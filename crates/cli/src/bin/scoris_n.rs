//! `scoris-n` — Sequence COmparison using the ORIS algorithm on
//! Nucleotides (the paper's prototype, as a command-line tool).
//!
//! ```text
//! scoris-n <bank1.fa> <bank2.fa> [options]
//! scoris-n --batch <dir-or-multi.fa> <bank2.fa> [options]
//! scoris-n <bank1.fa> --db <dir> [options]
//! scoris-n --batch <dir-or-multi.fa> --db <dir> [options]
//!
//!   -W, --word N        seed length (default 11)
//!   -e, --evalue X      e-value threshold (default 1e-3, the paper's -e)
//!   -x, --xdrop N       ungapped X-drop (default 20)
//!   -X, --xdrop-gap N   gapped X-drop (default 25)
//!   -s, --minscore N    minimum HSP score S1 (default 18)
//!   -f, --filter KIND   none | entropy | dust (default entropy)
//!   -t, --threads N     worker threads (default: all cores)
//!       --index-backend dense | sparse | auto (default auto): occurrence
//!                       index row-lookup layout — dense 4^W offsets vs
//!                       the sparse populated-codes table; purely a
//!                       space/time trade, output is identical
//!       --engine NAME   oris | blast (default oris)
//!       --asymmetric    asymmetric (W−1)-mer indexing (section 3.4)
//!       --both-strands  also search the complementary strand (sstart > send)
//!       --index FILE    load bank 2's index from a `mkindex` file instead
//!                       of building it (must match -W/-f/--asymmetric)
//!       --db DIR        search a `makedb` database instead of a subject
//!                       FASTA: every volume is searched per query, records
//!                       merged into one output stream, e-values computed
//!                       over the database-wide residue total
//!       --attach MODE   volume attach mode: mmap (default, zero-copy
//!                       postings/offsets) | copy (heap arrays)
//!       --window N      max volumes attached at once (default 0 = all;
//!                       1 bounds memory to one volume's working set)
//!       --workers N     with --db: search volumes in parallel with N
//!                       worker threads (default 1 = sequential; output
//!                       is byte-identical for any value; needs an
//!                       unbounded --window)
//!       --result-cache MB
//!                       with --db: memoize completed per-volume results
//!                       in an LRU bounded to MB megabytes, so repeated
//!                       queries are served without re-searching
//!                       (default 0 = off; hits replay identical bytes)
//!       --dbsize N      subject-side effective search space: price every
//!                       alignment against N residues instead of the
//!                       subject sequence's length (BLAST's -z; what a
//!                       --db search does implicitly with the manifest
//!                       total)
//!       --deadline MS   per-query budget (with --db): a query that exceeds
//!                       MS milliseconds fails cleanly with exit code 7,
//!                       output untouched, instead of running unbounded
//!       --skip-bad-volumes
//!                       with --db: quarantine a volume that fails to attach
//!                       (after retrying transient faults) and complete the
//!                       query over the surviving volumes, warning on stderr
//!                       with the residue coverage actually searched
//!       --batch PATH    many-query mode: prepare bank 2 once, stream each
//!                       query bank's records out as it finishes. PATH is a
//!                       directory of FASTA files (sorted by name, one query
//!                       bank each) or a multi-FASTA file (one query bank
//!                       per record). Peak memory stays at one query's
//!                       working set.
//!       --stats         print per-step timings to stderr (one `key=value`
//!                       line, same schema in plain/index/db/batch modes)
//!       --trace FILE    write span-style trace events (attach, per-volume
//!                       search, steps 2–4, cache lookup, merge) to FILE as
//!                       JSON lines; see `oris-obs` for the event schema
//!       --metrics-json FILE
//!                       write the metrics registry (counters, gauges,
//!                       latency histograms) to FILE as JSON on exit
//!       --metrics-prom FILE
//!                       write the metrics registry to FILE in the
//!                       Prometheus text exposition format on exit
//!   -o, --out FILE      write -m 8 records to FILE (buffered, written to a
//!                       temporary sibling and atomically renamed on success;
//!                       default stdout)
//! ```
//!
//! Instrumentation is off the result path: any combination of `--trace`
//! / `--metrics-*` leaves the `-m 8` bytes identical to a bare run.

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

use oris_cli::Args;
use oris_core::{FilterKind, OrisConfig, PipelineStats, PreparedBank, Session, StreamWriter};
use oris_obs::{names, Obs, StatsBlock, Stopwatch};
use oris_seqio::Bank;

fn usage() -> &'static str {
    "usage: scoris-n <bank1.fa> <bank2.fa> [-W n] [-e x] [-x n] [-X n] [-s n]\n\
     \t[-f none|entropy|dust] [-t n] [--index-backend dense|sparse|auto]\n\
     \t[--engine oris|blast] [--asymmetric]\n\
     \t[--both-strands] [--index bank2.oidx] [--batch dir-or-multi.fa]\n\
     \t[--db dir] [--attach mmap|copy] [--window n] [--workers n]\n\
     \t[--result-cache mb] [--dbsize n]\n\
     \t[--deadline ms] [--skip-bad-volumes] [--stats] [--trace f.jsonl]\n\
     \t[--metrics-json f.json] [--metrics-prom f.prom] [-o out.m8]"
}

/// A CLI failure: the one-line stderr message plus the process exit
/// code. Generic usage/input problems exit 1; database failures carry
/// [`oris_db::DbError::exit_code`]'s stable per-class codes (2 manifest,
/// 3 volume, 4 I/O, 5 configuration, 6 sink, 7 deadline) so scripts can
/// distinguish \"the database is rotten\" from \"the query timed out\"
/// without parsing stderr.
struct CliError {
    msg: String,
    code: u8,
}

impl From<String> for CliError {
    fn from(msg: String) -> CliError {
        CliError { msg, code: 1 }
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> CliError {
        CliError {
            msg: msg.to_string(),
            code: 1,
        }
    }
}

impl From<oris_db::DbError> for CliError {
    fn from(e: oris_db::DbError) -> CliError {
        CliError {
            code: e.exit_code(),
            msg: e.to_string(),
        }
    }
}

/// Where records go: stdout, or a temporary sibling of `-o`'s path that
/// [`Output::finish`] atomically renames into place — a crashed or failed
/// run never leaves a half-written output file under the requested name.
enum Output {
    Stdout,
    File { tmp: PathBuf, dest: PathBuf },
}

impl Output {
    fn open(path: Option<&String>) -> Result<(Box<dyn Write>, Output), String> {
        match path {
            None => Ok((
                Box::new(std::io::BufWriter::new(std::io::stdout())),
                Output::Stdout,
            )),
            Some(p) => {
                let dest = PathBuf::from(p);
                let mut name = dest
                    .file_name()
                    .ok_or_else(|| format!("{p}: not a file path"))?
                    .to_os_string();
                name.push(format!(".tmp.{}", std::process::id()));
                let tmp = dest.with_file_name(name);
                let f =
                    std::fs::File::create(&tmp).map_err(|e| format!("{}: {e}", tmp.display()))?;
                Ok((
                    Box::new(std::io::BufWriter::new(f)),
                    Output::File { tmp, dest },
                ))
            }
        }
    }

    /// Flushes `w` (which must be the writer `open` returned) and moves a
    /// tmp file to its final name. On *any* failure — flush included —
    /// the tmp file is removed, so no code path leaves a stray
    /// `.tmp.<pid>` sibling behind.
    fn finish(self, mut w: Box<dyn Write>) -> Result<(), String> {
        let flushed = w.flush().map_err(|e| e.to_string());
        drop(w);
        match self {
            Output::Stdout => flushed,
            Output::File { tmp, dest } => {
                let moved = flushed.and_then(|()| {
                    std::fs::rename(&tmp, &dest).map_err(|e| {
                        format!("renaming {} to {}: {e}", tmp.display(), dest.display())
                    })
                });
                if moved.is_err() {
                    let _ = std::fs::remove_file(&tmp);
                }
                moved
            }
        }
    }

    /// Removes the tmp file after a failed run (best effort).
    fn discard(self) {
        if let Output::File { tmp, .. } = self {
            let _ = std::fs::remove_file(tmp);
        }
    }
}

/// The `--batch` query source: a directory of FASTA files (sorted by
/// file name, one query bank each) or a multi-FASTA file (one query bank
/// per record, so each record gets its own e-value search space — the
/// batch is N independent comparisons, not one big bank).
///
/// Query banks are produced **lazily** — a directory batch holds exactly
/// one query file's bank in memory at a time (the multi-FASTA form keeps
/// its one source bank resident, but still builds per-record query banks
/// one at a time). A file that fails to read mid-batch fuses the
/// iterator and parks the error in [`BatchQueries::error`] for the
/// caller to surface after `run_batch` returns.
enum BatchQueries {
    Dir {
        files: std::vec::IntoIter<PathBuf>,
        error: Option<String>,
    },
    Records {
        bank: Bank,
        next: usize,
    },
}

impl BatchQueries {
    fn open(path: &str) -> Result<BatchQueries, String> {
        let meta = std::fs::metadata(path).map_err(|e| format!("{path}: {e}"))?;
        if meta.is_dir() {
            // Entry errors are fatal, not skipped: a dropped entry would
            // mean a query bank silently missing from the batch output.
            let mut files = Vec::new();
            for entry in std::fs::read_dir(path).map_err(|e| format!("{path}: {e}"))? {
                let p = entry.map_err(|e| format!("{path}: {e}"))?.path();
                let ext = p
                    .extension()
                    .and_then(|e| e.to_str())
                    .map(|e| e.to_ascii_lowercase());
                // `is_file` follows symlinks: a subdirectory named
                // `old.fa` must be skipped here, not abort the batch
                // mid-run when the FASTA reader hits it.
                if matches!(ext.as_deref(), Some("fa") | Some("fasta") | Some("fna")) && p.is_file()
                {
                    files.push(p);
                }
            }
            if files.is_empty() {
                return Err(format!("{path}: no .fa/.fasta/.fna files in directory"));
            }
            files.sort();
            Ok(BatchQueries::Dir {
                files: files.into_iter(),
                error: None,
            })
        } else {
            let bank = oris_seqio::read_fasta_file(path).map_err(|e| format!("{path}: {e}"))?;
            if bank.num_sequences() == 0 {
                return Err(format!("{path}: no sequences"));
            }
            Ok(BatchQueries::Records { bank, next: 0 })
        }
    }

    /// The read error that fused the iterator, if any.
    fn error(self) -> Option<String> {
        match self {
            BatchQueries::Dir { error, .. } => error,
            BatchQueries::Records { .. } => None,
        }
    }
}

impl Iterator for &mut BatchQueries {
    type Item = Bank;

    fn next(&mut self) -> Option<Bank> {
        match self {
            BatchQueries::Dir { files, error } => {
                if error.is_some() {
                    return None;
                }
                let f = files.next()?;
                match oris_seqio::read_fasta_file(&f) {
                    Ok(bank) => Some(bank),
                    Err(e) => {
                        *error = Some(format!("{}: {e}", f.display()));
                        None
                    }
                }
            }
            BatchQueries::Records { bank, next } => {
                if *next >= bank.num_sequences() {
                    return None;
                }
                let mut b = oris_seqio::BankBuilder::new();
                b.push_codes(&bank.record(*next).name, bank.sequence(*next));
                *next += 1;
                Some(b.finish())
            }
        }
    }
}

/// Builds the session for bank 2: fresh preparation, or attach from a
/// `mkindex` file. Returns the session and a stats-line tag naming the
/// subject's provenance.
fn build_session<'a>(
    bank2: &'a Bank,
    cfg: &OrisConfig,
    index: Option<&String>,
) -> Result<(Session<'a>, &'static str), String> {
    match index {
        None => Ok((Session::new(bank2, cfg)?, "built")),
        Some(path) => {
            let (idx, meta) =
                oris_index::read_index_file(path).map_err(|e| format!("{path}: {e}"))?;
            if meta.filter_code != cfg.filter.code() {
                let prepared_with = match FilterKind::from_code(meta.filter_code) {
                    Some(kind) => format!("filter {kind:?}"),
                    None => format!("an unknown filter (code {})", meta.filter_code),
                };
                return Err(format!(
                    "{path}: index was prepared with {prepared_with}, \
                     run requests filter {:?}",
                    cfg.filter
                ));
            }
            let prepared =
                PreparedBank::from_index(bank2, idx, &meta).map_err(|e| format!("{path}: {e}"))?;
            let session =
                Session::with_subject(prepared, cfg).map_err(|e| format!("{path}: {e}"))?;
            Ok((session, "loaded"))
        }
    }
}

/// The run's observability wiring: one [`Obs`] handle (armed when any of
/// `--stats` / `--trace` / `--metrics-json` / `--metrics-prom` is given,
/// disarmed — a single branch per instrumented operation — otherwise)
/// plus the exposition paths to write when the run succeeds.
struct ObsSetup {
    obs: Obs,
    metrics_json: Option<String>,
    metrics_prom: Option<String>,
}

fn build_obs(args: &Args) -> Result<ObsSetup, String> {
    let metrics_json = args.options.get("metrics-json").cloned();
    let metrics_prom = args.options.get("metrics-prom").cloned();
    let trace = args.options.get("trace");
    let armed = args.has_flag("stats")
        || trace.is_some()
        || metrics_json.is_some()
        || metrics_prom.is_some();
    let obs = if armed {
        let mut builder = Obs::builder();
        if let Some(path) = trace {
            let f = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
            builder = builder.trace(Box::new(std::io::BufWriter::new(f)));
        }
        builder.build()
    } else {
        Obs::disarmed()
    };
    Ok(ObsSetup {
        obs,
        metrics_json,
        metrics_prom,
    })
}

/// Flushes the trace sink and writes the `--metrics-*` documents. Called
/// on the success path only: a failed run keeps whatever trace lines made
/// it out (useful for debugging the failure) but writes no metrics files.
fn finish_obs(setup: &ObsSetup) -> Result<(), String> {
    setup
        .obs
        .flush()
        .map_err(|e| format!("flushing trace: {e}"))?;
    if setup.metrics_json.is_none() && setup.metrics_prom.is_none() {
        return Ok(());
    }
    let Some(snap) = setup.obs.snapshot() else {
        return Ok(());
    };
    if let Some(path) = &setup.metrics_json {
        std::fs::write(path, oris_obs::render_json(&snap)).map_err(|e| format!("{path}: {e}"))?;
    }
    if let Some(path) = &setup.metrics_prom {
        std::fs::write(path, oris_obs::render_prometheus(&snap))
            .map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(())
}

/// The pipeline-stats fields every oris-engine mode shares, in one
/// place so plain, db, and batch `--stats` lines keep the same schema.
fn pipeline_fields(b: &mut StatsBlock, s: &PipelineStats) {
    b.secs("index_secs", s.index_secs);
    b.field("index_builds", s.index_builds);
    b.secs("step2_secs", s.step2_secs);
    b.secs("step3_secs", s.step3_secs);
    b.secs("step4_secs", s.step4_secs);
    b.field("hsps", s.hsps);
    b.field("alignments", s.step4.emitted);
    b.field("pairs", s.step2.pairs_examined);
    b.field("aborted", s.step2.aborted);
    b.field("below", s.step2.below_threshold);
    b.field("kept", s.step2.kept);
    b.field("masked1", format!("{:.4}", s.masked_fraction1));
    b.field("masked2", format!("{:.4}", s.masked_fraction2));
}

fn run() -> Result<(), CliError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(
        &argv,
        &[
            "word",
            "evalue",
            "xdrop",
            "xdrop-gap",
            "minscore",
            "filter",
            "threads",
            "index-backend",
            "engine",
            "index",
            "batch",
            "db",
            "attach",
            "window",
            "workers",
            "result-cache",
            "dbsize",
            "deadline",
            "trace",
            "metrics-json",
            "metrics-prom",
            "out",
        ],
        &[
            "asymmetric",
            "both-strands",
            "skip-bad-volumes",
            "stats",
            "help",
        ],
        &[
            ("W", "word"),
            ("e", "evalue"),
            ("x", "xdrop"),
            ("X", "xdrop-gap"),
            ("s", "minscore"),
            ("f", "filter"),
            ("t", "threads"),
            ("o", "out"),
            ("h", "help"),
        ],
    )
    .map_err(|e| format!("{e}\n{}", usage()))?;

    if args.has_flag("help") {
        println!("{}", usage());
        return Ok(());
    }
    let batch_mode = args.options.contains_key("batch");
    let db_mode = args.options.contains_key("db");
    let expected_positionals = match (batch_mode, db_mode) {
        (true, true) => 0, // queries from --batch, subject from --db
        (true, false) | (false, true) => 1,
        (false, false) => 2,
    };
    if args.positional.len() != expected_positionals {
        let what = match (batch_mode, db_mode) {
            (true, true) => {
                "expected no FASTA banks (queries come from --batch, subject from --db)"
            }
            (true, false) => "expected one FASTA bank (the subject; queries come from --batch)",
            (false, true) => "expected one FASTA bank (the query; subject comes from --db)",
            (false, false) => "expected two FASTA banks",
        };
        return Err(format!("{what}\n{}", usage()).into());
    }
    if db_mode && args.options.contains_key("index") {
        return Err(
            "--db and --index are mutually exclusive (a database carries its own indexes)".into(),
        );
    }
    for db_only in ["attach", "window", "deadline", "workers", "result-cache"] {
        if !db_mode && args.options.contains_key(db_only) {
            // Silently ignoring these would let a mistyped --db flag run
            // the plain two-bank path with none of the requested
            // attach/memory behaviour.
            return Err(format!("--{db_only} requires --db").into());
        }
    }
    if !db_mode && args.has_flag("skip-bad-volumes") {
        return Err("--skip-bad-volumes requires --db".into());
    }

    let filter = match args
        .options
        .get("filter")
        .map(String::as_str)
        .unwrap_or("entropy")
    {
        "none" => FilterKind::None,
        "entropy" => FilterKind::Entropy,
        "dust" => FilterKind::Dust,
        other => return Err(format!("unknown filter {other:?}").into()),
    };
    let threads: usize = args.get_or("threads", 0).map_err(|e| e.to_string())?;

    // --dbsize: price every alignment against a fixed subject-side
    // residue total (BLAST's -z). A --db search sets this implicitly
    // from the manifest; an explicit value overrides even that.
    let subject_space = match args.options.get("dbsize") {
        None => oris_eval::SubjectSpace::PerSequence,
        Some(v) => {
            let n: u64 = v.parse().map_err(|e| format!("--dbsize {v:?}: {e}"))?;
            if n == 0 {
                // m·0 = 0 would make every e-value exactly 0.0 — the
                // filter silently disabled by a typo.
                return Err("--dbsize must be at least 1".into());
            }
            oris_eval::SubjectSpace::Database(n)
        }
    };
    let cfg = OrisConfig {
        w: args.get_or("word", 11).map_err(|e| e.to_string())?,
        evalue_threshold: args.get_or("evalue", 1e-3).map_err(|e| e.to_string())?,
        xdrop_ungapped: args.get_or("xdrop", 20).map_err(|e| e.to_string())?,
        xdrop_gapped: args.get_or("xdrop-gap", 25).map_err(|e| e.to_string())?,
        min_hsp_score: args.get_or("minscore", 18).map_err(|e| e.to_string())?,
        filter,
        asymmetric: args.has_flag("asymmetric"),
        both_strands: args.has_flag("both-strands"),
        threads: (threads > 0).then_some(threads),
        subject_space,
        index_backend: args.index_backend().map_err(|e| e.to_string())?,
        ..OrisConfig::default()
    };
    cfg.validate()?;

    let engine = args
        .options
        .get("engine")
        .map(String::as_str)
        .unwrap_or("oris");

    if engine != "oris" && args.options.contains_key("index") {
        return Err("--index is only supported by the oris engine".into());
    }
    if engine != "oris" && batch_mode {
        return Err("--batch is only supported by the oris engine".into());
    }
    if engine != "oris" && db_mode {
        return Err("--db is only supported by the oris engine".into());
    }

    let obs = build_obs(&args)?;
    if db_mode {
        return run_db(&args, &cfg, batch_mode, &obs);
    }
    if batch_mode {
        return run_batch(&args, &cfg, &obs).map_err(CliError::from);
    }

    let bank1 = oris_seqio::read_fasta_file(&args.positional[0])
        .map_err(|e| format!("{}: {e}", args.positional[0]))?;
    let bank2 = oris_seqio::read_fasta_file(&args.positional[1])
        .map_err(|e| format!("{}: {e}", args.positional[1]))?;

    let (records, report) = match engine {
        "oris" => {
            // The subject (bank 2) is prepared once — built here, or
            // loaded from a `mkindex` file — and the per-run stats report
            // the amortized cost: `index_secs` covers only the query's
            // build, the subject's one-time cost is its own field.
            let t0 = Stopwatch::start();
            let (mut session, subject_source) =
                build_session(&bank2, &cfg, args.options.get("index"))?;
            let subject_secs = t0.elapsed_secs();
            session.set_obs(obs.obs.clone());
            let subject = session.subject_stats();
            let qt = Stopwatch::start();
            let r = session.run(&bank1);
            obs.obs
                .observe_secs(names::QUERY_SECONDS, qt.elapsed_secs());
            let s = r.stats;
            let mut b = StatsBlock::new("oris", "plain");
            b.field("subject_source", subject_source);
            b.secs("subject_secs", subject_secs);
            b.field("subject_builds", subject.builds);
            b.field("queries", 1);
            b.field("records", r.alignments.len());
            pipeline_fields(&mut b, &s);
            (r.alignments, b)
        }
        "blast" => {
            let bcfg = oris_blast::BlastConfig::matched(&cfg);
            let qt = Stopwatch::start();
            let r = oris_blast::compare_banks(&bank1, &bank2, &bcfg);
            obs.obs
                .observe_secs(names::QUERY_SECONDS, qt.elapsed_secs());
            let s = r.stats;
            let mut b = StatsBlock::new("blast", "plain");
            b.field("queries", 1);
            b.field("records", r.alignments.len());
            b.secs("lookup_secs", s.lookup_secs);
            b.secs("scan_secs", s.scan_secs);
            b.secs("gapped_secs", s.gapped_secs);
            b.secs("output_secs", s.output_secs);
            b.field("hsps", s.hsps);
            b.field("alignments", s.raw_alignments);
            b.field("probes", s.scan.probes);
            b.field("hits", s.scan.hits);
            b.field("suppressed", s.scan.suppressed);
            b.field("extensions", s.scan.extensions);
            (r.alignments, b)
        }
        other => return Err(format!("unknown engine {other:?}").into()),
    };
    obs.obs.count(names::QUERIES_TOTAL, 1);
    obs.obs.count(names::RECORDS_TOTAL, records.len() as u64);

    let (mut w, out) = Output::open(args.options.get("out"))?;
    for r in &records {
        if let Err(e) = writeln!(w, "{r}") {
            out.discard();
            return Err(e.to_string().into());
        }
    }
    out.finish(w)?;

    if args.has_flag("stats") {
        eprintln!("{}", report.render());
    }
    finish_obs(&obs)?;
    Ok(())
}

/// The `--db` mode: search a `makedb` database. Every query runs across
/// all volumes (attached via mmap by default, through a bounded window
/// when `--window` is set), all volumes' records merge into one ordered
/// stream per query, and e-values are computed over the database-wide
/// residue total from the manifest — so the output is byte-identical to
/// a single-bank run over the concatenated input under `--dbsize
/// <total>`. Composes with `--batch` for many-query runs.
fn run_db(args: &Args, cfg: &OrisConfig, batch_mode: bool, obs: &ObsSetup) -> Result<(), CliError> {
    let db_dir = args.options.get("db").expect("checked by caller");
    let attach = match args
        .options
        .get("attach")
        .map(String::as_str)
        .unwrap_or("mmap")
    {
        "mmap" => oris_index::AttachMode::Mmap,
        "copy" => oris_index::AttachMode::HeapCopy,
        other => return Err(format!("unknown attach mode {other:?} (mmap | copy)").into()),
    };
    let window: usize = args.get_or("window", 0).map_err(|e| e.to_string())?;
    // --workers 0 and 1 are both the sequential walk (0 would be a
    // useless footgun to reject; treat it as "no parallelism").
    let workers: usize = args.get_or("workers", 1).map_err(|e| e.to_string())?;
    let result_cache_mb: usize = args.get_or("result-cache", 0).map_err(|e| e.to_string())?;
    // --deadline 0 is legal and expires immediately: a cheap way to
    // check the failure path end to end (and what the e2e tests pin).
    let deadline = match args.options.get("deadline") {
        None => None,
        Some(v) => {
            let ms: u64 = v.parse().map_err(|e| format!("--deadline {v:?}: {e}"))?;
            Some(std::time::Duration::from_millis(ms))
        }
    };
    let on_volume_error = if args.has_flag("skip-bad-volumes") {
        oris_db::OnVolumeError::SkipAndReport
    } else {
        oris_db::OnVolumeError::Fail
    };

    // `open` covers the whole manifest read + validation + session
    // config checks — everything between "a directory name" and "ready
    // to attach volumes".
    let t0 = Stopwatch::start();
    let db = oris_db::Database::open(db_dir).map_err(|e| CliError {
        msg: format!("{db_dir}: {e}"),
        code: e.exit_code(),
    })?;
    let opts = oris_db::DbOptions {
        attach,
        window,
        on_volume_error,
        deadline,
        volume_workers: workers.max(1),
        result_cache_bytes: result_cache_mb * (1 << 20),
        ..oris_db::DbOptions::default()
    };
    let mut session = oris_db::DbSession::new(&db, cfg, opts).map_err(|e| CliError {
        msg: format!("{db_dir}: {e}"),
        code: e.exit_code(),
    })?;
    session.set_obs(obs.obs.clone());
    let open_secs = t0.elapsed_secs();

    // Every input is opened BEFORE Output::open creates the .tmp.<pid>
    // sibling: a bad query path or batch directory must fail without
    // leaving a stray tmp file behind (the invariant the atomic-output
    // tests pin for the non-db modes).
    enum DbInput {
        Batch(BatchQueries),
        Single(Bank),
    }
    let input = if batch_mode {
        let batch_path = args.options.get("batch").expect("checked by caller");
        DbInput::Batch(BatchQueries::open(batch_path)?)
    } else {
        DbInput::Single(
            oris_seqio::read_fasta_file(&args.positional[0])
                .map_err(|e| format!("{}: {e}", args.positional[0]))?,
        )
    };

    let (w, out) = Output::open(args.options.get("out"))?;
    let mut sink = StreamWriter::new(w);

    let (per_query, queries_run, reports) = match input {
        DbInput::Batch(mut queries) => {
            let batch = match session.run_batch(&mut queries, &mut sink) {
                Ok(b) => b,
                Err(e) => {
                    out.discard();
                    return Err(e.into());
                }
            };
            if let Some(e) = queries.error() {
                out.discard();
                return Err(e.into());
            }
            let n = batch.queries();
            (batch.query_totals(), n, batch.reports)
        }
        DbInput::Single(query) => match session.run_query_reported(&query, &mut sink) {
            Ok((s, r)) => (s, 1, vec![r]),
            Err(e) => {
                out.discard();
                return Err(e.into());
            }
        },
    };
    let records = sink.records_written();
    out.finish(sink.into_inner())?;

    // A degraded run succeeded by design — but it must say so, loudly and
    // per quarantined volume, on stderr (the results channel stays clean).
    for (v, e) in session.quarantined() {
        eprintln!("scoris-n: warning: quarantined {e} (volume {v} skipped for this session)");
    }
    if let Some(worst) = reports
        .iter()
        .filter(|r| !r.is_complete())
        .min_by(|a, b| a.coverage().total_cmp(&b.coverage()))
    {
        eprintln!(
            "scoris-n: warning: results are partial: searched {} of {} volumes \
             ({:.1}% of database residues)",
            worst.searched.len(),
            worst.volumes_total,
            worst.coverage() * 100.0
        );
    }

    if args.has_flag("stats") {
        let costs = session.volume_costs();
        let attach_secs: f64 = costs.iter().map(|c| c.attach_secs).sum();
        let strand_secs: f64 = costs.iter().map(|c| c.strand_build_secs).sum();
        let mapped = costs.iter().filter(|c| c.mmap_backed).count();
        let total = match session.config().subject_space {
            oris_eval::SubjectSpace::Database(n) => n,
            oris_eval::SubjectSpace::PerSequence => 0,
        };
        let cache = session.result_cache_counters();
        // The counter fields render from the oris-obs metrics registry —
        // --stats arms the handle, and the db_obs integration test pins
        // these registry values equal to the ResultCache's own counters.
        let o = &obs.obs;
        let mut b = StatsBlock::new("oris", "db");
        b.field("db", db_dir);
        b.field("volumes", db.num_volumes());
        b.field("db_residues", total);
        b.field("queries", queries_run);
        b.field("records", records);
        b.field("attach", format!("{attach:?}"));
        b.field("attaches", o.counter(names::VOLUME_ATTACHES_TOTAL));
        b.secs("open_secs", open_secs);
        b.secs("attach_secs", attach_secs);
        b.secs("strand_build_secs", strand_secs);
        b.field("mapped_volumes", mapped);
        b.field("workers", workers);
        b.field("dispatches", o.counter(names::WORKER_DISPATCH_TOTAL));
        b.field("io_retries", o.counter(names::IO_RETRIES_TOTAL));
        b.field("quarantines", o.counter(names::VOLUME_QUARANTINES_TOTAL));
        b.field(
            "deadline_expiries",
            o.counter(names::DEADLINE_EXPIRIES_TOTAL),
        );
        b.field("cache_hits", o.counter(names::CACHE_HITS_TOTAL));
        b.field("cache_misses", o.counter(names::CACHE_MISSES_TOTAL));
        b.field("cache_insertions", o.counter(names::CACHE_INSERTIONS_TOTAL));
        b.field("cache_evictions", o.counter(names::CACHE_EVICTIONS_TOTAL));
        b.field(
            "cache_invalidations",
            o.counter(names::CACHE_INVALIDATIONS_TOTAL),
        );
        b.field("cache_entries", cache.entries);
        b.field("cache_bytes", cache.bytes);
        pipeline_fields(&mut b, &per_query);
        eprintln!("{}", b.render());
    }
    finish_obs(obs)?;
    Ok(())
}

/// The `--batch` mode: one prepared subject, a stream of query banks,
/// records leaving through a [`StreamWriter`] as each query finishes.
fn run_batch(args: &Args, cfg: &OrisConfig, obs: &ObsSetup) -> Result<(), String> {
    let batch_path = args.options.get("batch").expect("checked by caller");
    let mut queries = BatchQueries::open(batch_path)?;
    let bank2 = oris_seqio::read_fasta_file(&args.positional[0])
        .map_err(|e| format!("{}: {e}", args.positional[0]))?;

    let t0 = Stopwatch::start();
    let (mut session, subject_source) = build_session(&bank2, cfg, args.options.get("index"))?;
    let subject_secs = t0.elapsed_secs();
    session.set_obs(obs.obs.clone());

    let (w, out) = Output::open(args.options.get("out"))?;
    let mut sink = StreamWriter::new(w);
    // Query banks are pulled from the source lazily — one resident at a
    // time — so the batch's memory bound really is one query's working
    // set, not the query set's total size.
    let batch = match session.run_batch(&mut queries, &mut sink) {
        Ok(b) => b,
        Err(e) => {
            out.discard();
            return Err(e.to_string());
        }
    };
    if let Some(e) = queries.error() {
        out.discard();
        return Err(e);
    }
    let records = sink.records_written();
    out.finish(sink.into_inner())?;
    obs.obs.count(names::QUERIES_TOTAL, batch.queries() as u64);
    obs.obs.count(names::RECORDS_TOTAL, records);

    if args.has_flag("stats") {
        let t = batch.query_totals();
        let subject = &batch.subject;
        let mut b = StatsBlock::new("oris", "batch");
        b.field("batch_queries", batch.queries());
        b.field("subject_source", subject_source);
        b.secs("subject_secs", subject_secs);
        b.field("subject_builds", subject.builds);
        b.field("records", records);
        b.field("total_index_builds", batch.total_index_builds());
        pipeline_fields(&mut b, &t);
        eprintln!("{}", b.render());
    }
    finish_obs(obs)?;
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("scoris-n: {}", e.msg);
            ExitCode::from(e.code)
        }
    }
}
