//! `mkbank` — materialize synthetic DNA banks as FASTA files.
//!
//! ```text
//! mkbank <NAME|random> [options]
//!
//!   NAME                one of the paper banks: EST1..EST7, VRL, BCT, H10, H19
//!   --scale F           size multiplier over the reduced grid (default 1.0)
//!   -o, --out FILE      output FASTA (default <name>.fa)
//!
//! random mode:
//!   mkbank random --seqs N --len L [--gc F] [--seed S] [-o FILE]
//!
//!   --list              print the data-set table (paper section 3.2) and exit
//! ```

use std::process::ExitCode;

use oris_cli::Args;
use oris_simulate as sim;

fn usage() -> &'static str {
    "usage: mkbank <EST1..EST7|VRL|BCT|H10|H19|random> [--scale f] [-o out.fa]\n\
     \tmkbank random --seqs N --len L [--gc f] [--seed s] [-o out.fa]\n\
     \tmkbank --list"
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(
        &argv,
        &["scale", "out", "seqs", "len", "gc", "seed"],
        &["list", "help"],
        &[("o", "out"), ("h", "help")],
    )
    .map_err(|e| format!("{e}\n{}", usage()))?;

    if args.has_flag("help") {
        println!("{}", usage());
        return Ok(());
    }
    if args.has_flag("list") {
        let mut t =
            oris_eval::Table::new(vec!["Bank", "Origin (analogue)", "paper Mbp", "unit nt"]);
        for s in sim::paper_bank_specs() {
            t.row(vec![
                s.name.to_string(),
                format!("{:?}", s.kind),
                format!("{:.2}", s.paper_mbp),
                format!("{}", s.unit_nt),
            ]);
        }
        print!("{t}");
        return Ok(());
    }
    if args.positional.len() != 1 {
        return Err(format!("expected a bank name\n{}", usage()));
    }
    let name = &args.positional[0];

    let bank = if name == "random" {
        let seqs: usize = args.get_or("seqs", 100).map_err(|e| e.to_string())?;
        let len: usize = args.get_or("len", 500).map_err(|e| e.to_string())?;
        let gc: f64 = args.get_or("gc", 0.5).map_err(|e| e.to_string())?;
        let seed: u64 = args.get_or("seed", 42).map_err(|e| e.to_string())?;
        sim::random_bank(seed, seqs, len, gc)
    } else {
        let scale: f64 = args.get_or("scale", 1.0).map_err(|e| e.to_string())?;
        if sim::banks::spec_by_name(name).is_none() {
            return Err(format!("unknown bank {name:?}\n{}", usage()));
        }
        sim::paper_bank(name, scale).bank
    };

    let default_name = format!("{}.fa", name.to_lowercase());
    let out = args.options.get("out").cloned().unwrap_or(default_name);
    oris_seqio::fasta::write_fasta_file(&bank, &out).map_err(|e| format!("{out}: {e}"))?;
    eprintln!(
        "mkbank: wrote {} ({} sequences, {} nt) to {out}",
        name,
        bank.num_sequences(),
        bank.num_residues()
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mkbank: {e}");
            ExitCode::FAILURE
        }
    }
}
