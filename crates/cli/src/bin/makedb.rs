//! `makedb` — shard FASTA input into a searchable subject database
//! (size-bounded volumes, each a persisted bank + CSR index, plus a
//! manifest with database-wide statistics). `scoris-n --db` is the
//! search half.
//!
//! ```text
//! makedb <bank.fa> [more.fa ...] -o <dir> [options]
//!
//!   -o, --out DIR       database directory (required; manifest must not exist)
//!   -v, --volume-size N residue budget per volume (default 10000000;
//!                       sequences are never split across volumes)
//!   -W, --word N        seed length (default 11; asymmetric mode indexes W−1)
//!   -f, --filter KIND   none | entropy | dust (default entropy)
//!       --asymmetric    subject-side (W−1)-mer stride-2 indexing (section 3.4)
//!       --index-backend dense | sparse | auto (default auto): per-volume
//!                       row-lookup layout; search output is identical
//!       --stats         print per-volume build statistics to stderr
//! ```
//!
//! The per-volume preparation (mask + index) is exactly what `scoris-n`
//! would do for a subject bank under the same options, so a `--db` search
//! is byte-identical to a single-bank run over the concatenated input
//! (e-values included: the manifest records the database-wide residue
//! total every volume prices alignments against).

use std::process::ExitCode;

use oris_cli::Args;
use oris_core::{FilterKind, OrisConfig};
use oris_db::{make_db, MakeDbOptions};

fn usage() -> &'static str {
    "usage: makedb <bank.fa> [more.fa ...] -o dir [-v residues] [-W n]\n\
     \t[-f none|entropy|dust] [--asymmetric] [--index-backend dense|sparse|auto]\n\
     \t[--stats]"
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(
        &argv,
        &["word", "filter", "index-backend", "out", "volume-size"],
        &["asymmetric", "stats", "help"],
        &[
            ("W", "word"),
            ("f", "filter"),
            ("o", "out"),
            ("v", "volume-size"),
            ("h", "help"),
        ],
    )
    .map_err(|e| format!("{e}\n{}", usage()))?;

    if args.has_flag("help") {
        println!("{}", usage());
        return Ok(());
    }
    if args.positional.is_empty() {
        return Err(format!("expected at least one FASTA bank\n{}", usage()));
    }
    let out_dir = args
        .options
        .get("out")
        .ok_or_else(|| format!("-o/--out is required\n{}", usage()))?;

    let filter = match args
        .options
        .get("filter")
        .map(String::as_str)
        .unwrap_or("entropy")
    {
        "none" => FilterKind::None,
        "entropy" => FilterKind::Entropy,
        "dust" => FilterKind::Dust,
        other => return Err(format!("unknown filter {other:?}")),
    };
    let cfg = OrisConfig {
        w: args.get_or("word", 11).map_err(|e| e.to_string())?,
        filter,
        asymmetric: args.has_flag("asymmetric"),
        index_backend: args.index_backend().map_err(|e| e.to_string())?,
        ..OrisConfig::default()
    };
    cfg.validate()?;
    let volume_residues: usize = args
        .get_or("volume-size", 10_000_000)
        .map_err(|e| e.to_string())?;
    if volume_residues == 0 {
        return Err("--volume-size must be at least 1".into());
    }

    let t0 = oris_obs::Stopwatch::start();
    // Banks are read (and dropped) one input file at a time; the volume
    // splitter holds at most one building volume beyond that.
    let sources = args.positional.iter().map(|p| {
        oris_seqio::read_fasta_file(p)
            .map_err(|e| format!("{p}: {e}"))
            .unwrap_or_else(|e| {
                eprintln!("makedb: {e}");
                std::process::exit(1);
            })
    });
    let manifest = make_db(sources, out_dir, &MakeDbOptions::new(&cfg, volume_residues))
        .map_err(|e| e.to_string())?;

    if args.has_flag("stats") {
        for v in &manifest.volumes {
            eprintln!(
                "volume={} residues={} sequences={} fasta={} index={} hash={:016x}",
                v.id, v.residues, v.sequences, v.fasta, v.index, v.bank_hash
            );
        }
    }
    eprintln!(
        "makedb: wrote {} volume(s), {} residues, w={} stride={} filter={:?} to {out_dir} in {:.3}s",
        manifest.volumes.len(),
        manifest.total_residues,
        manifest.w,
        manifest.stride,
        filter,
        t0.elapsed_secs(),
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("makedb: {e}");
            ExitCode::FAILURE
        }
    }
}
