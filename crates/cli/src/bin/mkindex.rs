//! `mkindex` — build a subject bank's occurrence index once and persist
//! it (the build-once half of intensive comparison; `scoris-n --index`
//! is the query-many half).
//!
//! ```text
//! mkindex <bank.fa> [options]
//!
//!   -W, --word N        seed length (default 11; asymmetric mode indexes W−1)
//!   -f, --filter KIND   none | entropy | dust (default entropy)
//!       --asymmetric    subject-side (W−1)-mer stride-2 indexing (section 3.4)
//!       --index-backend dense | sparse | auto (default auto): row-lookup
//!                       layout — dense 4^W offsets vs the sparse
//!                       populated-codes table; output is identical
//!       --stats         print build time and footprint to stderr
//!   -o, --out FILE      output index (default <bank.fa>.oidx)
//! ```
//!
//! The preparation (mask + index) is exactly what `scoris-n` would do for
//! its second bank under the same options — `oris_core::PreparedBank`
//! runs it, this tool only persists the result — so a comparison that
//! loads the file is byte-identical to the all-in-memory run. The filter
//! kind and the masked fraction are recorded in the file; `scoris-n
//! --index` refuses an index prepared under different options.

use std::process::ExitCode;

use oris_cli::Args;
use oris_core::{FilterKind, OrisConfig, PreparedBank};
use oris_index::IndexMeta;

fn usage() -> &'static str {
    "usage: mkindex <bank.fa> [-W n] [-f none|entropy|dust] [--asymmetric]\n\
     \t[--index-backend dense|sparse|auto] [--stats] [-o out.oidx]"
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(
        &argv,
        &["word", "filter", "index-backend", "out"],
        &["asymmetric", "stats", "help"],
        &[("W", "word"), ("f", "filter"), ("o", "out"), ("h", "help")],
    )
    .map_err(|e| format!("{e}\n{}", usage()))?;

    if args.has_flag("help") {
        println!("{}", usage());
        return Ok(());
    }
    if args.positional.len() != 1 {
        return Err(format!("expected one FASTA bank\n{}", usage()));
    }
    let bank_path = &args.positional[0];

    let filter = match args
        .options
        .get("filter")
        .map(String::as_str)
        .unwrap_or("entropy")
    {
        "none" => FilterKind::None,
        "entropy" => FilterKind::Entropy,
        "dust" => FilterKind::Dust,
        other => return Err(format!("unknown filter {other:?}")),
    };
    let cfg = OrisConfig {
        w: args.get_or("word", 11).map_err(|e| e.to_string())?,
        filter,
        asymmetric: args.has_flag("asymmetric"),
        index_backend: args.index_backend().map_err(|e| e.to_string())?,
        ..OrisConfig::default()
    };
    cfg.validate()?;

    let bank = oris_seqio::read_fasta_file(bank_path).map_err(|e| format!("{bank_path}: {e}"))?;
    let prepared = PreparedBank::prepare(&bank, cfg.filter, cfg.subject_index_config());
    let meta = IndexMeta {
        masked_fraction: prepared.stats().masked_fraction,
        filter_code: cfg.filter.code(),
        // Content fingerprint: lets the loader refuse this index if the
        // FASTA is edited afterwards, even at unchanged length.
        bank_hash: oris_index::persist::fnv1a(bank.data()),
    };

    let out = args
        .options
        .get("out")
        .cloned()
        .unwrap_or_else(|| format!("{bank_path}.oidx"));
    oris_index::write_index_file(&out, prepared.index(), &meta)
        .map_err(|e| format!("{out}: {e}"))?;

    let s = prepared.stats();
    let istats = prepared.index().stats();
    if args.has_flag("stats") {
        eprintln!(
            "build={:.3}s w={} stride={} backend={:?} positions={} distinct={} masked={:.4} index_bytes={} fully_indexed={}",
            s.build_secs,
            prepared.index().w(),
            prepared.index().stride(),
            prepared.index().backend(),
            istats.indexed_positions,
            istats.distinct_seeds,
            s.masked_fraction,
            istats.index_bytes,
            prepared.index().is_fully_indexed(),
        );
    }
    eprintln!(
        "mkindex: wrote index of {bank_path} ({} positions, {} bytes) to {out}",
        istats.indexed_positions, istats.index_bytes
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mkindex: {e}");
            ExitCode::FAILURE
        }
    }
}
