//! End-to-end binary tests for the streaming batch front-end: `scoris-n
//! --batch` must stream exactly the bytes the single-query collected path
//! produces for each query, in batch order — and `-o` must be atomic
//! (tmp + rename) and byte-identical to stdout output.

use std::path::{Path, PathBuf};
use std::process::Command;

fn scoris_n() -> Command {
    Command::new(env!("CARGO_BIN_EXE_scoris_n"))
}

/// A fresh scratch directory per test (process ids keep parallel test
/// binaries apart; the test name keeps tests within one binary apart).
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("oris_cli_batch")
        .join(format!("{}_{test}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const CORE: &str = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGATCCGGTAAGCTACCGGTATTGACCGTA\
                    GGCATTACGGATCCATTGGCCAATTGGCACGTACGTAACGGTTAACCGGATTACGCTAGG";

/// Subject plus a directory of query banks, each sharing the core with
/// the subject (so every query produces records) and one decoy-only bank.
fn write_fixture(dir: &Path) -> (PathBuf, PathBuf) {
    let subject = dir.join("subject.fa");
    std::fs::write(
        &subject,
        format!(">s1 homolog\nCCGGAATTAT{CORE}GGTTAACCGG\n>s2 decoy\nGCGCGCGCATATATAT\n"),
    )
    .unwrap();
    let queries = dir.join("queries");
    std::fs::create_dir_all(&queries).unwrap();
    std::fs::write(
        queries.join("a.fa"),
        format!(">qa\nTTGACCGTAA{CORE}CCGGTAAGCT\n"),
    )
    .unwrap();
    std::fs::write(
        queries.join("b.fa"),
        format!(">qb1\n{CORE}\n>qb2 decoy only\nGGTTCCAAGGTTCCAAGGTTCCAA\n"),
    )
    .unwrap();
    std::fs::write(queries.join("c.fa"), format!(">qc\nAACC{CORE}TTGG\n")).unwrap();
    // Uppercase extension: must be picked up (extension match is
    // case-insensitive), and "D.FA" sorts before the lowercase names.
    std::fs::write(queries.join("D.FA"), format!(">qd\nGG{CORE}AA\n")).unwrap();
    // A non-FASTA file the directory loader must ignore.
    std::fs::write(queries.join("notes.txt"), "not a bank\n").unwrap();
    (subject, queries)
}

#[test]
fn batch_over_directory_matches_per_query_runs() {
    let dir = scratch("dir");
    let (subject, queries) = write_fixture(&dir);

    let out = scoris_n()
        .arg("--batch")
        .arg(&queries)
        .arg(&subject)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let batched = out.stdout;
    assert!(!batched.is_empty(), "fixture must produce alignments");

    // Reference: one single-query collected run per bank, in file-name
    // order ("D.FA" first — ASCII uppercase sorts before lowercase),
    // concatenated.
    let mut expected = Vec::new();
    for name in ["D.FA", "a.fa", "b.fa", "c.fa"] {
        let single = scoris_n()
            .arg(queries.join(name))
            .arg(&subject)
            .output()
            .unwrap();
        assert!(single.status.success());
        expected.extend_from_slice(&single.stdout);
    }
    assert_eq!(batched, expected);
}

#[test]
fn batch_over_multifasta_matches_per_record_runs() {
    let dir = scratch("multifasta");
    let (subject, _) = write_fixture(&dir);
    // One multi-FASTA file: each record is its own query bank (own
    // e-value search space).
    let multi = dir.join("multi.fa");
    std::fs::write(
        &multi,
        format!(">m1\nTT{CORE}GG\n>m2\nGGTTCCAAGGTTCCAA\n>m3\n{CORE}{CORE}\n"),
    )
    .unwrap();

    let out = scoris_n()
        .arg("--batch")
        .arg(&multi)
        .arg(&subject)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let batched = out.stdout;
    assert!(!batched.is_empty());

    let mut expected = Vec::new();
    for (name, seq) in [
        ("m1", format!("TT{CORE}GG")),
        ("m2", "GGTTCCAAGGTTCCAA".to_string()),
        ("m3", format!("{CORE}{CORE}")),
    ] {
        let single_fa = dir.join(format!("{name}.fa"));
        std::fs::write(&single_fa, format!(">{name}\n{seq}\n")).unwrap();
        let single = scoris_n().arg(&single_fa).arg(&subject).output().unwrap();
        assert!(single.status.success());
        expected.extend_from_slice(&single.stdout);
    }
    assert_eq!(batched, expected);
}

#[test]
fn out_file_matches_stdout_byte_for_byte() {
    let dir = scratch("outfile");
    let (subject, queries) = write_fixture(&dir);

    // Single-query mode.
    let stdout_run = scoris_n()
        .arg(queries.join("a.fa"))
        .arg(&subject)
        .output()
        .unwrap();
    assert!(stdout_run.status.success());
    assert!(!stdout_run.stdout.is_empty());
    let out_file = dir.join("single.m8");
    let st = scoris_n()
        .arg(queries.join("a.fa"))
        .arg(&subject)
        .arg("-o")
        .arg(&out_file)
        .status()
        .unwrap();
    assert!(st.success());
    assert_eq!(std::fs::read(&out_file).unwrap(), stdout_run.stdout);

    // Batch mode.
    let stdout_batch = scoris_n()
        .arg("--batch")
        .arg(&queries)
        .arg(&subject)
        .output()
        .unwrap();
    assert!(stdout_batch.status.success());
    let batch_file = dir.join("batch.m8");
    let st = scoris_n()
        .arg("--batch")
        .arg(&queries)
        .arg(&subject)
        .arg("-o")
        .arg(&batch_file)
        .status()
        .unwrap();
    assert!(st.success());
    assert_eq!(std::fs::read(&batch_file).unwrap(), stdout_batch.stdout);

    // The atomic write leaves no temporary siblings behind.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
        .collect();
    assert!(leftovers.is_empty(), "{leftovers:?}");
}

#[test]
fn failed_run_leaves_no_output_file() {
    let dir = scratch("atomic");
    let (subject, _) = write_fixture(&dir);
    let out_file = dir.join("never.m8");
    // Nonexistent batch path: the run fails before writing anything, and
    // no output (or tmp) file may appear under the requested name.
    let out = scoris_n()
        .arg("--batch")
        .arg(dir.join("missing"))
        .arg(&subject)
        .arg("-o")
        .arg(&out_file)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(!out_file.exists());
}

#[test]
fn batch_argument_validation() {
    let dir = scratch("validation");
    let (subject, queries) = write_fixture(&dir);

    // --batch takes exactly one positional (the subject).
    let out = scoris_n()
        .arg("--batch")
        .arg(&queries)
        .arg(&subject)
        .arg(&subject)
        .output()
        .unwrap();
    assert!(!out.status.success());

    // The blast engine has no batch mode.
    let out = scoris_n()
        .args(["--engine", "blast", "--batch"])
        .arg(&queries)
        .arg(&subject)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("batch"));

    // An empty directory is an error, not silent empty output.
    let empty = dir.join("empty");
    std::fs::create_dir_all(&empty).unwrap();
    let out = scoris_n()
        .arg("--batch")
        .arg(&empty)
        .arg(&subject)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.stdout.is_empty(), "no records may be emitted");
    assert!(
        stderr.contains("no .fa/.fasta/.fna files"),
        "the error must say what was missing: {stderr}"
    );

    // A directory with files but none of them FASTA is the same clean
    // error — the extension filter must not silently yield a zero-query
    // batch.
    let nofasta = dir.join("nofasta");
    std::fs::create_dir_all(&nofasta).unwrap();
    std::fs::write(nofasta.join("notes.txt"), "not a bank\n").unwrap();
    std::fs::write(nofasta.join("data.csv"), "1,2,3\n").unwrap();
    let out = scoris_n()
        .arg("--batch")
        .arg(&nofasta)
        .arg(&subject)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(out.stdout.is_empty());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no .fa/.fasta/.fna files"), "{stderr}");
}

#[test]
fn batch_stats_report_single_subject_build() {
    let dir = scratch("stats");
    let (subject, queries) = write_fixture(&dir);
    let out = scoris_n()
        .arg("--batch")
        .arg(&queries)
        .arg(&subject)
        .arg("--stats")
        .output()
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    // One subject build amortized over the whole batch: 4 queries, one
    // subject build, 4 + 1 total builds.
    assert!(stderr.contains("batch_queries=4"), "{stderr}");
    assert!(stderr.contains("subject_builds=1"), "{stderr}");
    assert!(stderr.contains("total_index_builds=5"), "{stderr}");
}
