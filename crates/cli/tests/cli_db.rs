//! End-to-end binary tests for the sharded-database workflow: `makedb`
//! sharding + `scoris-n --db` search, including the headline equivalence
//! — multi-volume `--db` output must be byte-identical to a single-bank
//! run over the concatenated FASTA under the same database-wide e-value
//! space — and the `--batch` composition.

use std::path::{Path, PathBuf};
use std::process::Command;

fn scoris_n() -> Command {
    Command::new(env!("CARGO_BIN_EXE_scoris_n"))
}

fn makedb() -> Command {
    Command::new(env!("CARGO_BIN_EXE_makedb"))
}

fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("oris_cli_db")
        .join(format!("{}_{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const CORE: &str = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGATCCGGTAAGCTACCGGTATTGACCGTA\
                    GGCATTACGGATCCATTGGCCAATTGGCACGTACGTAACGGTTAACCGGATTACGCTAGG";

/// Writes the subject FASTA (several core-bearing records + a decoy) and
/// a homologous query; returns (subject path, query path, total subject
/// residues).
fn write_fixture(dir: &Path) -> (PathBuf, PathBuf, usize) {
    let mut fasta = String::new();
    let mut total = 0usize;
    for i in 0..5 {
        let seq = format!("CCGGAATTAT{CORE}GGTTAACCGG{}", "ACGT".repeat(4 + i));
        total += seq.len();
        fasta.push_str(&format!(">subj{i} core-bearing\n{seq}\n"));
    }
    let decoy = "GCGCGCGCATATATATGCGCGCGC";
    total += decoy.len();
    fasta.push_str(&format!(">decoy\n{decoy}\n"));
    let subject = dir.join("subject.fa");
    std::fs::write(&subject, fasta).unwrap();

    let query = dir.join("query.fa");
    std::fs::write(&query, format!(">q homolog\nTTGACCGTAA{CORE}CCGGTAAGCT\n")).unwrap();
    (subject, query, total)
}

/// Shards the fixture subject into a database of small volumes; returns
/// the database directory.
fn build_db(dir: &Path, subject: &Path, volume_size: usize) -> PathBuf {
    let db = dir.join("db");
    let out = makedb()
        .arg(subject)
        .arg("-o")
        .arg(&db)
        .args(["--volume-size", &volume_size.to_string(), "-W", "8"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(db.join("manifest.orisdb").is_file());
    db
}

#[test]
fn makedb_shards_and_reports() {
    let dir = scratch("shard");
    let (subject, _, _) = write_fixture(&dir);
    let db = dir.join("db");
    let out = makedb()
        .arg(&subject)
        .arg("-o")
        .arg(&db)
        .args(["--volume-size", "300", "-W", "8", "--stats"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("volume=1"), "must shard: {stderr}");
    // Volume files exist alongside the manifest.
    assert!(db.join("vol00000.fa").is_file());
    assert!(db.join("vol00000.oidx").is_file());

    // Rebuilding into the same directory is refused.
    let out = makedb().arg(&subject).arg("-o").arg(&db).output().unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("already exists"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn db_search_matches_single_bank_run_byte_for_byte() {
    let dir = scratch("equiv");
    let (subject, query, total) = write_fixture(&dir);
    let db = build_db(&dir, &subject, 250);

    // Reference: single-bank run over the same (concatenated) FASTA under
    // the database-wide e-value space.
    let single = scoris_n()
        .arg(&query)
        .arg(&subject)
        .args(["--dbsize", &total.to_string(), "-W", "8"])
        .output()
        .unwrap();
    assert!(
        single.status.success(),
        "{}",
        String::from_utf8_lossy(&single.stderr)
    );
    assert!(!single.stdout.is_empty(), "fixture must produce records");

    for attach in ["mmap", "copy"] {
        for window in ["0", "1"] {
            let via_db = scoris_n()
                .arg(&query)
                .arg("--db")
                .arg(&db)
                .args(["--attach", attach, "--window", window, "-W", "8"])
                .output()
                .unwrap();
            assert!(
                via_db.status.success(),
                "attach={attach}: {}",
                String::from_utf8_lossy(&via_db.stderr)
            );
            assert_eq!(
                via_db.stdout, single.stdout,
                "attach={attach} window={window} output differs from the single-bank run"
            );
        }
    }
}

#[test]
fn db_batch_composes_and_matches_per_query_runs() {
    let dir = scratch("batch");
    let (subject, _, _) = write_fixture(&dir);
    let db = build_db(&dir, &subject, 250);

    let queries = dir.join("queries");
    std::fs::create_dir_all(&queries).unwrap();
    std::fs::write(
        queries.join("a.fa"),
        format!(">qa\nTTGACCGTAA{CORE}CCGGTAAGCT\n"),
    )
    .unwrap();
    std::fs::write(
        queries.join("b.fa"),
        format!(">qb1\n{CORE}\n>qb2 decoy only\nGGTTCCAAGGTTCCAAGGTTCCAA\n"),
    )
    .unwrap();

    let batched = scoris_n()
        .arg("--batch")
        .arg(&queries)
        .arg("--db")
        .arg(&db)
        .args(["--stats", "-W", "8"])
        .output()
        .unwrap();
    assert!(
        batched.status.success(),
        "{}",
        String::from_utf8_lossy(&batched.stderr)
    );
    assert!(!batched.stdout.is_empty());
    let stderr = String::from_utf8_lossy(&batched.stderr);
    assert!(stderr.contains("queries=2"), "{stderr}");

    // Reference: per-query --db runs, concatenated in file-name order.
    let mut expected = Vec::new();
    for name in ["a.fa", "b.fa"] {
        let single = scoris_n()
            .arg(queries.join(name))
            .arg("--db")
            .arg(&db)
            .args(["-W", "8"])
            .output()
            .unwrap();
        assert!(single.status.success());
        expected.extend_from_slice(&single.stdout);
    }
    assert_eq!(batched.stdout, expected);
}

#[test]
fn workers_and_result_cache_are_invisible_in_output() {
    // --workers N and --result-cache MB change wall-clock, never bytes:
    // every variant's stdout equals the plain sequential run, and the
    // stats line reports the cache doing its job on a repeated query.
    let dir = scratch("serve");
    let (subject, query, _) = write_fixture(&dir);
    let db = build_db(&dir, &subject, 250);

    let plain = scoris_n()
        .arg(&query)
        .arg("--db")
        .arg(&db)
        .args(["-W", "8"])
        .output()
        .unwrap();
    assert!(
        plain.status.success(),
        "{}",
        String::from_utf8_lossy(&plain.stderr)
    );
    assert!(!plain.stdout.is_empty());

    for extra in [
        &["--workers", "4"][..],
        &["--result-cache", "8"][..],
        &["--workers", "2", "--result-cache", "8"][..],
    ] {
        let out = scoris_n()
            .arg(&query)
            .arg("--db")
            .arg(&db)
            .args(["-W", "8"])
            .args(extra)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{extra:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(out.stdout, plain.stdout, "{extra:?} changed output bytes");
    }

    // A batch repeating the same query twice: the second pass is served
    // from the cache, visible in the stats line's hit counter.
    let queries = dir.join("repeat_queries");
    std::fs::create_dir_all(&queries).unwrap();
    let q = std::fs::read_to_string(&query).unwrap();
    std::fs::write(queries.join("a.fa"), &q).unwrap();
    std::fs::write(queries.join("b.fa"), &q).unwrap();
    let out = scoris_n()
        .arg("--batch")
        .arg(&queries)
        .arg("--db")
        .arg(&db)
        .args([
            "-W",
            "8",
            "--result-cache",
            "8",
            "--workers",
            "2",
            "--stats",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("cache_hits=0 "), "{stderr}");
    assert!(stderr.contains("workers=2"), "{stderr}");
    // And the doubled output is exactly the plain output twice.
    let mut twice = plain.stdout.clone();
    twice.extend_from_slice(&plain.stdout);
    assert_eq!(out.stdout, twice);
}

#[test]
fn db_argument_validation() {
    let dir = scratch("validation");
    let (subject, query, _) = write_fixture(&dir);
    let db = build_db(&dir, &subject, 250);

    // --db + --index is contradictory.
    let out = scoris_n()
        .arg(&query)
        .arg("--db")
        .arg(&db)
        .args(["--index", "whatever.oidx"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // --db takes exactly one positional (the query) outside batch mode.
    let out = scoris_n()
        .arg(&query)
        .arg(&subject)
        .arg("--db")
        .arg(&db)
        .output()
        .unwrap();
    assert!(!out.status.success());

    // The blast engine has no database mode.
    let out = scoris_n()
        .args(["--engine", "blast"])
        .arg(&query)
        .arg("--db")
        .arg(&db)
        .output()
        .unwrap();
    assert!(!out.status.success());

    // A configuration mismatch (different word length than the database
    // was built with) is a clean error naming the mismatch.
    let out = scoris_n()
        .arg(&query)
        .arg("--db")
        .arg(&db)
        .args(["-W", "9"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("w="), "{stderr}");

    // --attach / --window without --db would otherwise be silently
    // ignored on the plain two-bank path.
    for flag in [
        ["--window", "1"],
        ["--attach", "copy"],
        ["--workers", "2"],
        ["--result-cache", "8"],
    ] {
        let out = scoris_n()
            .arg(&query)
            .arg(&subject)
            .args(flag)
            .output()
            .unwrap();
        assert!(!out.status.success(), "{flag:?} must require --db");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("requires --db"),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // A missing database directory is a clean error, not a panic.
    let out = scoris_n()
        .arg(&query)
        .arg("--db")
        .arg(dir.join("no-such-db"))
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).starts_with("scoris-n:"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn failed_db_run_leaves_no_output_or_tmp_file() {
    // Regression: a bad query path (or batch directory) in --db mode
    // must fail BEFORE the atomic output machinery creates its
    // .tmp.<pid> sibling — same invariant the non-db modes pin.
    let dir = scratch("atomic");
    let (subject, _, _) = write_fixture(&dir);
    let db = build_db(&dir, &subject, 250);
    let out_file = dir.join("never.m8");

    let out = scoris_n()
        .arg(dir.join("missing.fa"))
        .arg("--db")
        .arg(&db)
        .args(["-W", "8", "-o"])
        .arg(&out_file)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(!out_file.exists());

    let out = scoris_n()
        .arg("--batch")
        .arg(dir.join("missing-batch"))
        .arg("--db")
        .arg(&db)
        .args(["-W", "8", "-o"])
        .arg(&out_file)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(!out_file.exists());

    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
        .collect();
    assert!(leftovers.is_empty(), "{leftovers:?}");
}

#[test]
fn dbsize_changes_evalues_only() {
    let dir = scratch("dbsize");
    let (subject, query, _) = write_fixture(&dir);

    let plain = scoris_n()
        .arg(&query)
        .arg(&subject)
        .args(["-W", "8"])
        .output()
        .unwrap();
    assert!(plain.status.success());
    let sized = scoris_n()
        .arg(&query)
        .arg(&subject)
        .args(["--dbsize", "1000000000", "-W", "8"])
        .output()
        .unwrap();
    assert!(sized.status.success());

    let parse = |bytes: &[u8]| -> Vec<Vec<String>> {
        String::from_utf8_lossy(bytes)
            .lines()
            .map(|l| l.split('\t').map(str::to_string).collect())
            .collect()
    };
    let a = parse(&plain.stdout);
    let b = parse(&sized.stdout);
    assert!(!a.is_empty());
    assert_eq!(
        a.len(),
        b.len(),
        "a billion-residue space may not drop the strong fixture hits"
    );
    for (ra, rb) in a.iter().zip(&b) {
        // All fields but the e-value (field 10) are identical; the
        // inflated search space must inflate the e-value.
        assert_eq!(ra[..10], rb[..10]);
        assert_eq!(ra[11], rb[11], "bit score is space-independent");
        let ea: f64 = ra[10].parse().unwrap();
        let eb: f64 = rb[10].parse().unwrap();
        assert!(eb > ea, "dbsize must inflate e-values ({ea} vs {eb})");
    }
}
