//! End-to-end failure-path tests: each database failure class must leave
//! the CLI with its documented exit code and a single-line stderr
//! diagnostic — plus the `verifydb` smoke workflow (build → corrupt one
//! byte → the report names exactly the rotten volume).
//!
//! Exit-code table (shared by `scoris-n --db` and `verifydb`):
//! 0 success · 1 usage · 2 manifest · 3 volume · 4 I/O · 5 config ·
//! 6 sink · 7 deadline.

use std::path::{Path, PathBuf};
use std::process::Command;

fn scoris_n() -> Command {
    Command::new(env!("CARGO_BIN_EXE_scoris_n"))
}

fn makedb() -> Command {
    Command::new(env!("CARGO_BIN_EXE_makedb"))
}

fn verifydb() -> Command {
    Command::new(env!("CARGO_BIN_EXE_verifydb"))
}

fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("oris_cli_faults")
        .join(format!("{}_{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const CORE: &str = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGATCCGGTAAGCTACCGGTATTGACCGTA\
                    GGCATTACGGATCCATTGGCCAATTGGCACGTACGTAACGGTTAACCGGATTACGCTAGG";

/// Builds a small multi-volume database plus a homologous query;
/// returns (db dir, query path).
fn fixture(test: &str) -> (PathBuf, PathBuf) {
    let dir = scratch(test);
    let mut fasta = String::new();
    for i in 0..5 {
        fasta.push_str(&format!(
            ">subj{i}\nCCGGAATTAT{CORE}GGTTAACCGG{}\n",
            "ACGT".repeat(4 + i)
        ));
    }
    let subject = dir.join("subject.fa");
    std::fs::write(&subject, fasta).unwrap();
    let query = dir.join("query.fa");
    std::fs::write(&query, format!(">q\nTTGACCGTAA{CORE}CCGGTAAGCT\n")).unwrap();

    let db = dir.join("db");
    let out = makedb()
        .arg(&subject)
        .arg("-o")
        .arg(&db)
        .args(["--volume-size", "200", "-W", "8"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    (db, query)
}

/// XORs one byte of `path` in place.
fn flip_byte(path: &Path, offset: usize, mask: u8) {
    let mut bytes = std::fs::read(path).unwrap();
    bytes[offset] ^= mask;
    std::fs::write(path, bytes).unwrap();
}

fn search(db: &Path, query: &Path, extra: &[&str]) -> std::process::Output {
    scoris_n()
        .arg(query)
        .arg("--db")
        .arg(db)
        .args(["-W", "8"])
        .args(extra)
        .output()
        .unwrap()
}

/// Asserts a failed run: the given exit code, empty stdout, and exactly
/// one stderr line carrying the `scoris-n:` prefix plus `needle`.
fn assert_clean_failure(out: &std::process::Output, code: i32, needle: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(code), "stderr: {stderr}");
    assert!(out.stdout.is_empty(), "failed runs must not emit records");
    let lines: Vec<&str> = stderr.lines().collect();
    assert_eq!(lines.len(), 1, "want one diagnostic line, got: {stderr}");
    assert!(lines[0].starts_with("scoris-n: "), "{stderr}");
    assert!(lines[0].contains(needle), "wanted {needle:?} in: {stderr}");
}

#[test]
fn clean_database_still_exits_zero() {
    let (db, query) = fixture("ok");
    let out = search(&db, &query, &[]);
    assert_eq!(out.status.code(), Some(0));
    assert!(!out.stdout.is_empty(), "homologous query must hit");
}

#[test]
fn missing_volume_exits_3() {
    let (db, query) = fixture("missing");
    std::fs::remove_file(db.join("vol00001.fa")).unwrap();
    let out = search(&db, &query, &[]);
    assert_clean_failure(&out, 3, "missing");
}

#[test]
fn corrupt_manifest_exits_2() {
    let (db, query) = fixture("manifest");
    flip_byte(&db.join("manifest.orisdb"), 20, 0x04);
    let out = search(&db, &query, &[]);
    assert_clean_failure(&out, 2, "manifest");
}

#[test]
fn rewritten_volume_exits_3_with_hash_mismatch() {
    let (db, query) = fixture("hash");
    // Flip one sequence base to another valid base ('A' ^ 0x06 = 'G'):
    // still a parseable FASTA, but the content hash no longer matches
    // the manifest row.
    let vol = db.join("vol00000.fa");
    let bytes = std::fs::read(&vol).unwrap();
    let header_end = bytes.iter().position(|&b| b == b'\n').unwrap();
    let offset = header_end
        + 1
        + bytes[header_end + 1..]
            .iter()
            .position(|&b| b == b'A')
            .unwrap();
    flip_byte(&vol, offset, 0x06);
    let out = search(&db, &query, &[]);
    assert_clean_failure(&out, 3, "content hash");
}

#[test]
fn corrupt_index_exits_3() {
    let (db, query) = fixture("index");
    flip_byte(&db.join("vol00001.oidx"), 0, 0xFF);
    let out = search(&db, &query, &[]);
    assert_clean_failure(&out, 3, "vol00001.oidx");
}

#[test]
fn zero_deadline_exits_7() {
    let (db, query) = fixture("deadline");
    let out = search(&db, &query, &["--deadline", "0"]);
    assert_clean_failure(&out, 7, "deadline");
}

#[test]
fn generous_deadline_output_matches_unguarded() {
    let (db, query) = fixture("deadline_ok");
    let plain = search(&db, &query, &[]);
    let guarded = search(&db, &query, &["--deadline", "3600000"]);
    assert_eq!(guarded.status.code(), Some(0));
    assert_eq!(
        plain.stdout, guarded.stdout,
        "deadline must not change output"
    );
}

#[test]
fn skip_bad_volumes_degrades_with_warning() {
    let (db, query) = fixture("skip");
    let full = search(&db, &query, &[]);
    assert_eq!(full.status.code(), Some(0));

    flip_byte(&db.join("vol00001.oidx"), 0, 0xFF);
    // Without the flag: hard failure.
    assert_eq!(search(&db, &query, &[]).status.code(), Some(3));
    // With it: success, fewer records, loud stderr.
    let out = search(&db, &query, &["--skip-bad-volumes"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    assert!(stderr.contains("quarantined"), "{stderr}");
    assert!(stderr.contains("partial"), "{stderr}");
    assert!(
        out.stdout.len() < full.stdout.len(),
        "degraded output must be a subset"
    );
}

#[test]
fn deadline_without_db_is_a_usage_error() {
    let (db, query) = fixture("usage");
    let subject = db.parent().unwrap().join("subject.fa");
    let out = scoris_n()
        .arg(&query)
        .arg(&subject)
        .args(["-W", "8", "--deadline", "5"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let out = scoris_n()
        .arg(&query)
        .arg(&subject)
        .args(["-W", "8", "--skip-bad-volumes"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}

// ---------------------------------------------------------------------
// verifydb
// ---------------------------------------------------------------------

#[test]
fn verifydb_passes_a_clean_database_both_modes() {
    let (db, _) = fixture("verify_ok");
    for mode in ["mmap", "copy"] {
        let out = verifydb()
            .arg(&db)
            .args(["--attach", mode])
            .output()
            .unwrap();
        assert_eq!(
            out.status.code(),
            Some(0),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("OK"), "{stdout}");
        assert!(!stdout.contains("FAILED"), "{stdout}");
    }
    // --quiet prints nothing on success.
    let out = verifydb().arg(&db).arg("--quiet").output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert!(out.stdout.is_empty());
}

#[test]
fn verifydb_smoke_names_exactly_the_corrupt_volume() {
    // The CI smoke: build → flip one byte in one volume's index →
    // verifydb reports that volume (and only it) and exits 3.
    let (db, _) = fixture("verify_smoke");
    flip_byte(&db.join("vol00001.oidx"), 12, 0x01);
    let out = verifydb().arg(&db).output().unwrap();
    assert_eq!(out.status.code(), Some(3));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let failed: Vec<&str> = stdout.lines().filter(|l| l.contains("FAILED")).collect();
    assert_eq!(failed.len(), 1, "{stdout}");
    assert!(failed[0].contains("volume 00001"), "{stdout}");
    assert!(
        stdout.lines().filter(|l| l.contains(": OK")).count() >= 1,
        "{stdout}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("failed verification"), "{stderr}");
}

#[test]
fn verifydb_corrupt_manifest_exits_2() {
    let (db, _) = fixture("verify_manifest");
    flip_byte(&db.join("manifest.orisdb"), 25, 0x10);
    let out = verifydb().arg(&db).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn verifydb_missing_directory_exits_4() {
    let dir = scratch("verify_absent");
    let out = verifydb().arg(dir.join("no_such_db")).output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(4),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn verifydb_usage_errors_exit_1() {
    let out = verifydb().output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let out = verifydb().args(["a", "b"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
}
