//! End-to-end tests for the observability flags: `--trace`,
//! `--metrics-json`, `--metrics-prom`, and the unified `--stats` schema.
//! The headline contract: arming every instrument at max verbosity
//! leaves the `-m 8` bytes identical to a bare run, and the exported
//! metrics document carries every documented instrument name.

use std::path::{Path, PathBuf};
use std::process::Command;

fn scoris_n() -> Command {
    Command::new(env!("CARGO_BIN_EXE_scoris_n"))
}

fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("oris_cli_obs")
        .join(format!("{}_{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const CORE: &str = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGATCCGGTAAGCTACCGGTATTGACCGTA\
                    GGCATTACGGATCCATTGGCCAATTGGCACGTACGTAACGGTTAACCGGATTACGCTAGG";

fn write_fixture(dir: &Path) -> (PathBuf, PathBuf) {
    let mut fasta = String::new();
    for i in 0..5 {
        let seq = format!("CCGGAATTAT{CORE}GGTTAACCGG{}", "ACGT".repeat(4 + i));
        fasta.push_str(&format!(">subj{i}\n{seq}\n"));
    }
    let subject = dir.join("subject.fa");
    std::fs::write(&subject, fasta).unwrap();
    let query = dir.join("query.fa");
    std::fs::write(&query, format!(">q homolog\nTTGACCGTAA{CORE}CCGGTAAGCT\n")).unwrap();
    (subject, query)
}

/// Builds a small sharded database via makedb; returns its directory.
fn build_db(dir: &Path, subject: &Path) -> PathBuf {
    let db = dir.join("db");
    let out = Command::new(env!("CARGO_BIN_EXE_makedb"))
        .arg(subject)
        .arg("-o")
        .arg(&db)
        .args(["--volume-size", "200", "-W", "8"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    db
}

#[test]
fn armed_instrumentation_is_byte_invisible_end_to_end() {
    let dir = scratch("byte_identity");
    let (subject, query) = write_fixture(&dir);
    let db = build_db(&dir, &subject);
    let run = |extra: &[&str]| {
        let out = scoris_n()
            .arg(&query)
            .args(["--db", db.to_str().unwrap(), "-W", "8"])
            .args(extra)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let bare = run(&[]);
    assert!(!bare.is_empty(), "workload must produce records");
    let trace = dir.join("trace.jsonl");
    let mjson = dir.join("metrics.json");
    let mprom = dir.join("metrics.prom");
    let armed = run(&[
        "--stats",
        "--trace",
        trace.to_str().unwrap(),
        "--metrics-json",
        mjson.to_str().unwrap(),
        "--metrics-prom",
        mprom.to_str().unwrap(),
    ]);
    assert_eq!(armed, bare, "armed instrumentation changed output bytes");
}

#[test]
fn metrics_json_parses_and_contains_every_documented_name() {
    let dir = scratch("schema");
    let (subject, query) = write_fixture(&dir);
    let db = build_db(&dir, &subject);
    let mjson = dir.join("metrics.json");
    let out = scoris_n()
        .arg(&query)
        .args(["--db", db.to_str().unwrap(), "-W", "8"])
        .args(["--metrics-json", mjson.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = std::fs::read_to_string(&mjson).unwrap();
    // Minimal well-formedness: one object, balanced brackets, the three
    // documented sections in order.
    assert!(
        doc.starts_with('{') && doc.trim_end().ends_with('}'),
        "{doc}"
    );
    assert_eq!(
        doc.matches(['{', '[']).count(),
        doc.matches(['}', ']']).count(),
        "unbalanced JSON: {doc}"
    );
    for section in ["\"counters\":{", "\"gauges\":{", "\"histograms\":{"] {
        assert!(doc.contains(section), "missing {section} in {doc}");
    }
    // Every documented instrument appears, touched or not.
    for name in oris_obs::names::ALL {
        assert!(
            doc.contains(&format!("\"{name}\":")),
            "missing {name} in {doc}"
        );
    }
    // And the run actually counted itself.
    assert!(doc.contains("\"queries_total\":1"), "{doc}");
    assert!(!doc.contains("\"records_total\":0"), "{doc}");
}

#[test]
fn trace_is_json_lines_with_balanced_spans() {
    let dir = scratch("trace");
    let (subject, query) = write_fixture(&dir);
    let db = build_db(&dir, &subject);
    let trace = dir.join("trace.jsonl");
    // --result-cache so the cache_lookup span has a cache to probe.
    let out = scoris_n()
        .arg(&query)
        .args([
            "--db",
            db.to_str().unwrap(),
            "-W",
            "8",
            "--result-cache",
            "1",
        ])
        .args(["--trace", trace.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&trace).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "trace must not be empty");
    for l in &lines {
        assert!(
            l.starts_with("{\"seq\":") && l.ends_with('}'),
            "bad line: {l}"
        );
        assert_eq!(
            l.matches('{').count(),
            l.matches('}').count(),
            "unbalanced: {l}"
        );
    }
    let begins = lines
        .iter()
        .filter(|l| l.contains("\"ev\":\"begin\""))
        .count();
    let ends = lines
        .iter()
        .filter(|l| l.contains("\"ev\":\"end\""))
        .count();
    assert_eq!(begins, ends, "every span must close:\n{text}");
    for span in [
        "\"span\":\"query\"",
        "\"span\":\"attach\"",
        "\"span\":\"volume_search\"",
        "\"span\":\"merge\"",
        "\"span\":\"cache_lookup\"",
        "\"span\":\"step2\"",
        "\"span\":\"step3\"",
    ] {
        assert!(text.contains(span), "missing {span} in trace:\n{text}");
    }
}

#[test]
fn prometheus_exposition_has_typed_instruments() {
    let dir = scratch("prom");
    let (subject, query) = write_fixture(&dir);
    let db = build_db(&dir, &subject);
    let mprom = dir.join("metrics.prom");
    let out = scoris_n()
        .arg(&query)
        .args(["--db", db.to_str().unwrap(), "-W", "8"])
        .args(["--metrics-prom", mprom.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&mprom).unwrap();
    assert!(text.contains("# TYPE oris_queries_total counter"), "{text}");
    assert!(text.contains("# TYPE oris_cache_bytes gauge"), "{text}");
    assert!(
        text.contains("# TYPE oris_query_seconds histogram"),
        "{text}"
    );
    assert!(
        text.contains("oris_query_seconds_bucket{le=\"+Inf\"} 1"),
        "{text}"
    );
    assert!(text.contains("oris_queries_total 1"), "{text}");
}

#[test]
fn stats_schema_is_unified_across_modes() {
    let dir = scratch("stats_schema");
    let (subject, query) = write_fixture(&dir);
    let db = build_db(&dir, &subject);
    let shared = [
        "engine=oris",
        "mode=",
        "index_secs=",
        "step2_secs=",
        "step3_secs=",
        "step4_secs=",
        "hsps=",
        "alignments=",
        "pairs=",
        "kept=",
    ];
    // Plain two-bank mode.
    let out = scoris_n()
        .args([query.to_str().unwrap(), subject.to_str().unwrap()])
        .args(["-W", "8", "--stats"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let plain = String::from_utf8_lossy(&out.stderr);
    assert!(plain.contains("mode=plain"), "{plain}");
    assert!(plain.contains("subject_source=built"), "{plain}");
    for key in shared {
        assert!(plain.contains(key), "plain stats missing {key}: {plain}");
    }
    // Database mode: same shared schema plus registry-backed fields.
    let out = scoris_n()
        .arg(&query)
        .args(["--db", db.to_str().unwrap(), "-W", "8", "--stats"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let dbs = String::from_utf8_lossy(&out.stderr);
    assert!(dbs.contains("mode=db"), "{dbs}");
    for key in shared {
        assert!(dbs.contains(key), "db stats missing {key}: {dbs}");
    }
    for key in [
        "cache_hits=",
        "cache_misses=",
        "attaches=",
        "dispatches=",
        "quarantines=0",
    ] {
        assert!(dbs.contains(key), "db stats missing {key}: {dbs}");
    }
}
