//! End-to-end binary tests for the persisted-index workflow: an index
//! written by `mkindex` and loaded with `scoris-n --index` must produce
//! byte-identical `-m 8` output to the all-in-memory run on the same
//! inputs — and mismatched or corrupt index files must fail loudly.

use std::path::{Path, PathBuf};
use std::process::Command;

fn scoris_n() -> Command {
    Command::new(env!("CARGO_BIN_EXE_scoris_n"))
}

fn mkindex() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mkindex"))
}

/// A fresh scratch directory per test (process ids keep parallel test
/// binaries apart; the test name keeps tests within one binary apart).
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("oris_cli_roundtrip")
        .join(format!("{}_{test}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Two banks sharing one long, high-identity region (plus decoys and a
/// low-complexity run so the default entropy filter has something to do).
fn write_fixture_banks(dir: &Path) -> (PathBuf, PathBuf) {
    let core = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGATCCGGTAAGCTACCGGTATTGACCGTA\
                GGCATTACGGATCCATTGGCCAATTGGCACGTACGTAACGGTTAACCGGATTACGCTAGG";
    let polya = "A".repeat(80);
    let q = dir.join("query.fa");
    let s = dir.join("subject.fa");
    std::fs::write(
        &q,
        format!(">q1 with core\nTTGACCGTAA{core}CCGGTAAGCT\n>q2 low complexity\n{polya}\n"),
    )
    .unwrap();
    std::fs::write(
        &s,
        format!(">s1 homolog\nCCGGAATTAT{core}GGTTAACCGG\n>s2 decoy\n{polya}GCGCGCGCATATATAT\n"),
    )
    .unwrap();
    (q, s)
}

#[test]
fn loaded_index_output_is_byte_identical() {
    let dir = scratch("identical");
    let (q, s) = write_fixture_banks(&dir);
    let direct = dir.join("direct.m8");
    let loaded = dir.join("loaded.m8");
    let oidx = dir.join("subject.oidx");

    let st = scoris_n()
        .args([q.to_str().unwrap(), s.to_str().unwrap(), "-o"])
        .arg(&direct)
        .status()
        .unwrap();
    assert!(st.success());

    let st = mkindex().arg(&s).arg("-o").arg(&oidx).status().unwrap();
    assert!(st.success());

    // `--index=` and `--out=` exercise the key=value spelling end to end.
    let st = scoris_n()
        .args([
            q.to_str().unwrap(),
            s.to_str().unwrap(),
            &format!("--index={}", oidx.display()),
            &format!("--out={}", loaded.display()),
        ])
        .status()
        .unwrap();
    assert!(st.success());

    let direct_bytes = std::fs::read(&direct).unwrap();
    let loaded_bytes = std::fs::read(&loaded).unwrap();
    assert!(!direct_bytes.is_empty(), "fixture must produce alignments");
    assert_eq!(direct_bytes, loaded_bytes);
}

#[test]
fn loaded_index_with_explicit_options_matches() {
    // Non-default preparation (dust filter, asymmetric stride, W=9) must
    // round-trip too when both tools are given the same options.
    let dir = scratch("options");
    let (q, s) = write_fixture_banks(&dir);
    let direct = dir.join("direct.m8");
    let loaded = dir.join("loaded.m8");
    let oidx = dir.join("subject.oidx");
    let opts = ["-W", "9", "-f", "dust", "--asymmetric"];

    let st = scoris_n()
        .args([q.to_str().unwrap(), s.to_str().unwrap()])
        .args(opts)
        .arg("-o")
        .arg(&direct)
        .status()
        .unwrap();
    assert!(st.success());
    let st = mkindex()
        .arg(&s)
        .args(opts)
        .arg("-o")
        .arg(&oidx)
        .status()
        .unwrap();
    assert!(st.success());
    let st = scoris_n()
        .args([q.to_str().unwrap(), s.to_str().unwrap()])
        .args(opts)
        .arg("--index")
        .arg(&oidx)
        .arg("-o")
        .arg(&loaded)
        .status()
        .unwrap();
    assert!(st.success());

    let direct_bytes = std::fs::read(&direct).unwrap();
    assert!(!direct_bytes.is_empty());
    assert_eq!(direct_bytes, std::fs::read(&loaded).unwrap());
}

#[test]
fn mismatched_index_options_are_rejected() {
    let dir = scratch("mismatch");
    let (q, s) = write_fixture_banks(&dir);
    let oidx = dir.join("subject.oidx");
    let st = mkindex().arg(&s).arg("-o").arg(&oidx).status().unwrap();
    assert!(st.success());

    // Word length differs from the index's.
    let out = scoris_n()
        .args([
            q.to_str().unwrap(),
            s.to_str().unwrap(),
            "-W",
            "9",
            "--index",
        ])
        .arg(&oidx)
        .output()
        .unwrap();
    assert!(!out.status.success());

    // Filter differs.
    let out = scoris_n()
        .args([
            q.to_str().unwrap(),
            s.to_str().unwrap(),
            "-f",
            "none",
            "--index",
        ])
        .arg(&oidx)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("filter"));

    // Wrong bank: the index belongs to the subject, not the query.
    let out = scoris_n()
        .args([s.to_str().unwrap(), q.to_str().unwrap(), "--index"])
        .arg(&oidx)
        .output()
        .unwrap();
    assert!(!out.status.success());

    // The blast engine has no index path.
    let out = scoris_n()
        .args([
            q.to_str().unwrap(),
            s.to_str().unwrap(),
            "--engine",
            "blast",
            "--index",
        ])
        .arg(&oidx)
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn corrupt_index_file_fails_cleanly() {
    let dir = scratch("corrupt");
    let (q, s) = write_fixture_banks(&dir);
    let oidx = dir.join("subject.oidx");
    let st = mkindex().arg(&s).arg("-o").arg(&oidx).status().unwrap();
    assert!(st.success());

    // Truncate the file to half its size.
    let bytes = std::fs::read(&oidx).unwrap();
    let cut = dir.join("truncated.oidx");
    std::fs::write(&cut, &bytes[..bytes.len() / 2]).unwrap();
    let out = scoris_n()
        .args([q.to_str().unwrap(), s.to_str().unwrap(), "--index"])
        .arg(&cut)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("corrupt"));

    // Not an index file at all.
    let out = scoris_n()
        .args([q.to_str().unwrap(), s.to_str().unwrap(), "--index"])
        .arg(&q)
        .output()
        .unwrap();
    assert!(!out.status.success());
}
