//! Concurrent-serving suite: the parallel volume fan-out and the
//! volume-level result cache, exercised together with PR 6's failure
//! machinery. The contracts pinned here:
//!
//! * Parallel output is **byte-identical** to the sequential walk for
//!   any worker count, with or without injected faults, and the
//!   [`SearchReport`] (searched / skipped / retries / coverage) is
//!   *equal*, not merely equivalent.
//! * A deadline that expires mid-fan-out leaves the caller's sink
//!   untouched, inserts nothing into the cache, and leaves the session
//!   fully usable.
//! * Cache hits replay byte-identical records and are labeled in the
//!   report; a quarantined volume's entries are invalidated and never
//!   served again.

use std::io::ErrorKind;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use oris_core::{CollectSink, Deadline, OrisConfig};
use oris_db::{
    make_db, Database, DbError, DbOptions, DbSession, Fault, FaultRule, FaultyIo, MakeDbOptions,
    OnVolumeError, SearchReport,
};
use oris_seqio::{Bank, BankBuilder};

fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("oris_db_serving_test")
        .join(format!("{}_{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn bank(seqs: &[(&str, &str)]) -> Bank {
    let mut b = BankBuilder::new();
    for (name, s) in seqs {
        b.push_str(name, s).unwrap();
    }
    b.finish()
}

const CORE: &str = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGATCCGGTAAGCTACCGGTATTGACCGTA";

fn subject_bank() -> Bank {
    let recs: Vec<(String, String)> = (0..8)
        .map(|i| {
            (
                format!("subj{i}"),
                format!("CCGGAATTAT{CORE}GGTTAACCGG{}", "ACGT".repeat(5 + i)),
            )
        })
        .collect();
    let refs: Vec<(&str, &str)> = recs.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
    bank(&refs)
}

fn cfg() -> OrisConfig {
    OrisConfig::small(8)
}

fn query() -> Bank {
    bank(&[("q", &format!("TT{CORE}GG"))])
}

/// Builds a database with ≥4 volumes, returning its directory.
fn build_db(test: &str) -> PathBuf {
    let dir = scratch(test);
    let subject = subject_bank();
    let per_volume = (subject.num_residues() / 4).max(1);
    let m = make_db([subject], &dir, &MakeDbOptions::new(&cfg(), per_volume)).unwrap();
    assert!(
        m.volumes.len() >= 4,
        "wanted ≥4 volumes, got {}",
        m.volumes.len()
    );
    dir
}

fn render(sink: CollectSink) -> Vec<String> {
    sink.into_records().iter().map(|r| r.to_string()).collect()
}

/// One query through a fresh session under `opts`, over an optional
/// injector.
fn run_once(
    dir: &PathBuf,
    io: Option<FaultyIo>,
    opts: DbOptions,
) -> Result<(Vec<String>, SearchReport), DbError> {
    let db = match io {
        Some(io) => Database::open_with_io(dir, Arc::new(io))?,
        None => Database::open(dir)?,
    };
    let mut session = DbSession::new(&db, &cfg(), opts)?;
    let mut sink = CollectSink::new();
    let (_, report) = session.run_query_reported(&query(), &mut sink)?;
    Ok((render(sink), report))
}

#[test]
fn workers_require_unbounded_window() {
    let dir = build_db("workers_window");
    let db = Database::open(&dir).unwrap();
    let err = DbSession::new(
        &db,
        &cfg(),
        DbOptions {
            volume_workers: 2,
            window: 1,
            ..DbOptions::default()
        },
    )
    .err()
    .expect("bounded window + workers must be rejected");
    assert!(matches!(err, DbError::Config(_)), "{err:?}");
    // window >= volumes is effectively unbounded and therefore fine.
    DbSession::new(
        &db,
        &cfg(),
        DbOptions {
            volume_workers: 2,
            window: db.num_volumes(),
            ..DbOptions::default()
        },
    )
    .unwrap();
}

#[test]
fn parallel_output_and_report_match_sequential() {
    let dir = build_db("parallel_eq");
    let (seq_records, seq_report) = run_once(&dir, None, DbOptions::default()).unwrap();
    assert!(!seq_records.is_empty(), "workload must produce records");
    for workers in [2, 4, 16] {
        let opts = DbOptions {
            volume_workers: workers,
            ..DbOptions::default()
        };
        let (records, report) = run_once(&dir, None, opts).unwrap();
        assert_eq!(records, seq_records, "workers={workers} changed bytes");
        assert_eq!(report, seq_report, "workers={workers} changed the report");
    }
}

#[test]
fn parallel_degraded_mode_matches_sequential_exactly() {
    // One volume durably corrupt, one suffering a single transient
    // fault: quarantine, retry count and surviving-volume bytes must be
    // identical whatever the worker count — attach (where every failure
    // happens) is sequential by design.
    let dir = build_db("parallel_fault");
    let rules = || {
        FaultyIo::with_rules([
            FaultRule::always(
                "vol00001.oidx",
                Fault::FlipByte {
                    offset: 64,
                    mask: 0xFF,
                },
            ),
            FaultRule::first("vol00002.fa", 1, Fault::Error(ErrorKind::Interrupted)),
        ])
    };
    let base = DbOptions {
        on_volume_error: OnVolumeError::SkipAndReport,
        retry_backoff: Duration::from_micros(50),
        ..DbOptions::default()
    };
    let (seq_records, seq_report) = run_once(&dir, Some(rules()), base).unwrap();
    assert_eq!(seq_report.skipped, vec![1]);
    assert_eq!(seq_report.retries, 1);
    assert!(!seq_report.is_complete());
    for workers in [2, 4] {
        let opts = DbOptions {
            volume_workers: workers,
            ..base
        };
        let (records, report) = run_once(&dir, Some(rules()), opts).unwrap();
        assert_eq!(records, seq_records, "workers={workers} changed bytes");
        assert_eq!(report, seq_report, "workers={workers} changed the report");
    }
}

#[test]
fn expired_deadline_leaves_sink_untouched_and_inserts_nothing() {
    let dir = build_db("deadline_parallel");
    let db = Database::open(&dir).unwrap();
    let opts = DbOptions {
        volume_workers: 2,
        result_cache_bytes: 1 << 20,
        ..DbOptions::default()
    };
    let mut session = DbSession::new(&db, &cfg(), opts).unwrap();
    let mut sink = CollectSink::new();
    let err = session
        .run_query_deadline(&query(), &mut sink, &Deadline::after(Duration::ZERO))
        .expect_err("zero deadline must expire");
    assert!(matches!(err, DbError::DeadlineExceeded(_)), "{err:?}");
    assert!(render(sink).is_empty(), "sink must be untouched on expiry");
    let counters = session.result_cache_counters();
    assert_eq!(
        (counters.insertions, counters.entries),
        (0, 0),
        "an aborted query must not populate the cache"
    );
    // The session survives: the same query without a deadline completes
    // and matches a fresh sequential run byte for byte.
    let mut sink = CollectSink::new();
    let (_, report) = session
        .run_query_deadline(&query(), &mut sink, &Deadline::none())
        .unwrap();
    assert!(report.is_complete());
    let (seq_records, _) = run_once(&dir, None, DbOptions::default()).unwrap();
    assert_eq!(render(sink), seq_records);
}

#[test]
fn repeated_query_is_served_from_cache_byte_identically() {
    let dir = build_db("cache_repeat");
    let db = Database::open(&dir).unwrap();
    let num = db.num_volumes();
    let opts = DbOptions {
        result_cache_bytes: 1 << 20,
        ..DbOptions::default()
    };
    let mut session = DbSession::new(&db, &cfg(), opts).unwrap();

    let mut cold = CollectSink::new();
    let (_, cold_report) = session.run_query_reported(&query(), &mut cold).unwrap();
    assert!(cold_report.cache_hits.is_empty());
    let counters = session.result_cache_counters();
    assert_eq!(counters.misses as usize, num);
    assert_eq!(counters.insertions as usize, num);

    let mut warm = CollectSink::new();
    let (_, warm_report) = session.run_query_reported(&query(), &mut warm).unwrap();
    assert_eq!(
        warm_report.cache_hits,
        (0..num).collect::<Vec<_>>(),
        "every volume must be a hit on the repeat"
    );
    assert_eq!(warm_report.searched, cold_report.searched);
    assert_eq!(warm_report.residues_searched, cold_report.residues_searched);
    assert_eq!(session.result_cache_counters().hits as usize, num);
    assert_eq!(render(warm), render(cold), "a hit must replay exact bytes");

    // A different query bank misses: the key is content, not identity.
    let other = bank(&[("q2", &format!("AA{CORE}CC"))]);
    let mut sink = CollectSink::new();
    let (_, report) = session.run_query_reported(&other, &mut sink).unwrap();
    assert!(report.cache_hits.is_empty());
    assert_eq!(session.result_cache_counters().misses as usize, 2 * num);
}

#[test]
fn quarantined_volume_is_invalidated_and_never_served_from_cache() {
    // Populate the cache, then break volume 1 and force a re-attach via
    // a window-bounded session scanning a *different* query: the attach
    // failure quarantines the volume and drops its cached entries — a
    // repeat of the original query must not resurrect volume 1's records
    // from the cache.
    let dir = build_db("cache_quarantine");
    let io = Arc::new(FaultyIo::new());
    let db = Database::open_with_io(&dir, io.clone()).unwrap();
    let opts = DbOptions {
        window: 1, // re-attach per scan, so the fault is actually hit
        result_cache_bytes: 1 << 20,
        on_volume_error: OnVolumeError::SkipAndReport,
        retry_backoff: Duration::from_micros(50),
        ..DbOptions::default()
    };
    let mut session = DbSession::new(&db, &cfg(), opts).unwrap();
    let mut sink = CollectSink::new();
    let (_, first) = session.run_query_reported(&query(), &mut sink).unwrap();
    assert!(first.is_complete());

    io.push(FaultRule::always(
        "vol00001.oidx",
        Fault::FlipByte {
            offset: 64,
            mask: 0xFF,
        },
    ));
    // A query the cache has never seen scans, re-attaches, and trips the
    // fault on volume 1 → quarantine + invalidation.
    let other = bank(&[("q2", &format!("AA{CORE}CC"))]);
    let mut sink = CollectSink::new();
    let (_, degraded) = session.run_query_reported(&other, &mut sink).unwrap();
    assert_eq!(degraded.skipped, vec![1]);

    // The original query repeats: volumes 0, 2, 3… replay from cache,
    // volume 1 is skipped — not served from its stale entries.
    let mut sink = CollectSink::new();
    let (_, repeat) = session.run_query_reported(&query(), &mut sink).unwrap();
    assert_eq!(repeat.skipped, vec![1]);
    assert!(!repeat.cache_hits.contains(&1));
    assert!(!repeat.searched.contains(&1));
    let surviving = render(sink);
    assert!(!surviving.is_empty());
    // And the surviving bytes equal a fresh cacheless degraded run.
    let (expect, _) = run_once(
        &dir,
        Some(FaultyIo::with_rules([FaultRule::always(
            "vol00001.oidx",
            Fault::FlipByte {
                offset: 64,
                mask: 0xFF,
            },
        )])),
        DbOptions {
            window: 1,
            on_volume_error: OnVolumeError::SkipAndReport,
            retry_backoff: Duration::from_micros(50),
            ..DbOptions::default()
        },
    )
    .unwrap();
    assert_eq!(surviving, expect);
}

#[test]
fn undersized_cache_stores_nothing_but_output_is_correct() {
    // A cache too small for even one volume's records degrades to a
    // no-op: zero insertions, zero hits, bytes identical to cacheless.
    let dir = build_db("cache_tiny");
    let db = Database::open(&dir).unwrap();
    let opts = DbOptions {
        result_cache_bytes: 1,
        ..DbOptions::default()
    };
    let mut session = DbSession::new(&db, &cfg(), opts).unwrap();
    let mut first = CollectSink::new();
    session.run_query_reported(&query(), &mut first).unwrap();
    let mut second = CollectSink::new();
    let (_, report) = session.run_query_reported(&query(), &mut second).unwrap();
    assert!(report.cache_hits.is_empty());
    let counters = session.result_cache_counters();
    assert_eq!((counters.insertions, counters.hits), (0, 0));
    let (seq_records, _) = run_once(&dir, None, DbOptions::default()).unwrap();
    assert_eq!(render(first), seq_records);
    assert_eq!(render(second), seq_records);
}

#[test]
fn parallel_and_cache_compose() {
    // workers > 1 with the cache on: cold run parallel-searches, warm
    // run replays — both byte-identical to the sequential cacheless walk.
    let dir = build_db("parallel_cache");
    let db = Database::open(&dir).unwrap();
    let num = db.num_volumes();
    let opts = DbOptions {
        volume_workers: 4,
        result_cache_bytes: 1 << 20,
        ..DbOptions::default()
    };
    let mut session = DbSession::new(&db, &cfg(), opts).unwrap();
    let mut cold = CollectSink::new();
    session.run_query_reported(&query(), &mut cold).unwrap();
    let mut warm = CollectSink::new();
    let (_, report) = session.run_query_reported(&query(), &mut warm).unwrap();
    assert_eq!(report.cache_hits.len(), num);
    let (seq_records, _) = run_once(&dir, None, DbOptions::default()).unwrap();
    assert_eq!(render(cold), seq_records);
    assert_eq!(render(warm), seq_records);
}
