//! Observability contract suite: an armed [`oris_obs::Obs`] handle —
//! registry plus trace sink at max verbosity — must be byte-invisible
//! on the result path, and the counters it accumulates must agree with
//! the subsystems they mirror.
//!
//! * Property: for any worker count / cache size, a fully armed session
//!   produces the same `-m 8` bytes *and* the same [`SearchReport`] as
//!   a disarmed one.
//! * The obs cache counters equal [`ResultCache`]'s own counters after
//!   a scripted hit / miss / quarantine sequence.
//! * Deadline expiries and volume quarantines are counted.

use std::io::ErrorKind;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use oris_core::{CollectSink, Deadline, OrisConfig};
use oris_db::{
    make_db, Database, DbOptions, DbSession, Fault, FaultRule, FaultyIo, MakeDbOptions,
    OnVolumeError, SearchReport,
};
use oris_obs::{names, Obs};
use oris_seqio::{Bank, BankBuilder};
use proptest::prelude::*;

fn bank(seqs: &[(&str, &str)]) -> Bank {
    let mut b = BankBuilder::new();
    for (name, s) in seqs {
        b.push_str(name, s).unwrap();
    }
    b.finish()
}

const CORE: &str = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGATCCGGTAAGCTACCGGTATTGACCGTA";

fn cfg() -> OrisConfig {
    OrisConfig::small(8)
}

fn query() -> Bank {
    bank(&[("q", &format!("TT{CORE}GG"))])
}

/// One shared multi-volume database for the whole suite (building it
/// per proptest case would dominate the run).
fn shared_db() -> &'static PathBuf {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        let dir = std::env::temp_dir()
            .join("oris_db_obs_test")
            .join(std::process::id().to_string());
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let recs: Vec<(String, String)> = (0..8)
            .map(|i| {
                (
                    format!("subj{i}"),
                    format!("CCGGAATTAT{CORE}GGTTAACCGG{}", "ACGT".repeat(5 + i)),
                )
            })
            .collect();
        let refs: Vec<(&str, &str)> = recs.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
        let subject = bank(&refs);
        let per_volume = (subject.num_residues() / 4).max(1);
        let m = make_db([subject], &dir, &MakeDbOptions::new(&cfg(), per_volume)).unwrap();
        assert!(m.volumes.len() >= 4);
        dir
    })
}

/// Runs the same two queries (cold, then repeat — so the cache path is
/// exercised when enabled) through a fresh session carrying `obs`.
fn run_with_obs(opts: DbOptions, obs: Obs) -> (Vec<String>, Vec<SearchReport>) {
    let db = Database::open(shared_db()).unwrap();
    let mut session = DbSession::new(&db, &cfg(), opts).unwrap();
    session.set_obs(obs);
    let mut sink = CollectSink::new();
    let mut reports = Vec::new();
    for _ in 0..2 {
        let (_, r) = session.run_query_reported(&query(), &mut sink).unwrap();
        reports.push(r);
    }
    let records = sink.into_records().iter().map(|r| r.to_string()).collect();
    (records, reports)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arming the registry and a max-verbosity trace sink changes
    /// nothing observable: same bytes, same reports, for any worker
    /// count and cache size.
    #[test]
    fn armed_obs_is_byte_invisible(
        workers_sel in 0usize..3,
        cache_sel in 0usize..2,
    ) {
        let workers = [1usize, 2, 4][workers_sel];
        let cache_mb = [0usize, 1][cache_sel];
        let opts = || DbOptions {
            volume_workers: workers,
            result_cache_bytes: cache_mb << 20,
            ..DbOptions::default()
        };
        let (plain_records, plain_reports) = run_with_obs(opts(), Obs::disarmed());
        let armed = Obs::builder().trace(Box::new(std::io::sink())).build();
        let (armed_records, armed_reports) = run_with_obs(opts(), armed.clone());
        prop_assert_eq!(&armed_records, &plain_records);
        prop_assert_eq!(&armed_reports, &plain_reports);
        // And the instrumentation actually ran: two queries counted.
        prop_assert_eq!(armed.counter(names::QUERIES_TOTAL), 2);
    }
}

#[test]
fn obs_cache_counters_match_result_cache_after_hit_miss_quarantine() {
    // Scripted sequence against one session: a cold query (all misses,
    // all insertions), a byte-identical repeat (all hits), then a fault
    // that quarantines volume 1 (invalidating its cached entries) and a
    // final degraded repeat. After every step the obs registry must
    // agree exactly with the ResultCache's own counters.
    let io = Arc::new(FaultyIo::new());
    let db = Database::open_with_io(shared_db(), io.clone()).unwrap();
    let opts = DbOptions {
        window: 1, // re-attach per scan, so the fault is actually hit
        result_cache_bytes: 1 << 20,
        on_volume_error: OnVolumeError::SkipAndReport,
        retry_backoff: Duration::from_micros(50),
        ..DbOptions::default()
    };
    let mut session = DbSession::new(&db, &cfg(), opts).unwrap();
    let obs = Obs::armed();
    session.set_obs(obs.clone());

    let check = |obs: &Obs, session: &DbSession, step: &str| {
        let c = session.result_cache_counters();
        assert_eq!(obs.counter(names::CACHE_HITS_TOTAL), c.hits, "{step}: hits");
        assert_eq!(
            obs.counter(names::CACHE_MISSES_TOTAL),
            c.misses,
            "{step}: misses"
        );
        assert_eq!(
            obs.counter(names::CACHE_INSERTIONS_TOTAL),
            c.insertions,
            "{step}: insertions"
        );
        assert_eq!(
            obs.counter(names::CACHE_EVICTIONS_TOTAL),
            c.evictions,
            "{step}: evictions"
        );
        assert_eq!(
            obs.counter(names::CACHE_INVALIDATIONS_TOTAL),
            c.invalidations,
            "{step}: invalidations"
        );
        assert_eq!(
            obs.gauge(names::CACHE_ENTRIES),
            c.entries as f64,
            "{step}: entries"
        );
        assert_eq!(
            obs.gauge(names::CACHE_BYTES),
            c.bytes as f64,
            "{step}: bytes"
        );
    };

    let mut sink = CollectSink::new();
    session.run_query_reported(&query(), &mut sink).unwrap();
    check(&obs, &session, "cold");
    assert!(obs.counter(names::CACHE_MISSES_TOTAL) >= 4);
    assert_eq!(obs.counter(names::CACHE_HITS_TOTAL), 0);

    let mut sink = CollectSink::new();
    let (_, warm) = session.run_query_reported(&query(), &mut sink).unwrap();
    check(&obs, &session, "warm");
    assert_eq!(
        obs.counter(names::CACHE_HITS_TOTAL) as usize,
        warm.cache_hits.len()
    );
    assert!(!warm.cache_hits.is_empty());

    io.push(FaultRule::always(
        "vol00001.oidx",
        Fault::FlipByte {
            offset: 64,
            mask: 0xFF,
        },
    ));
    // One transient read error on volume 2: retried (and counted), then
    // the attach succeeds — no output impact.
    io.push(FaultRule::first(
        "vol00002.fa",
        1,
        Fault::Error(ErrorKind::Interrupted),
    ));
    // A never-cached query scans, re-attaches, trips the fault on
    // volume 1 → quarantine + invalidation of its cached entries.
    let other = bank(&[("q2", &format!("AA{CORE}CC"))]);
    let mut sink = CollectSink::new();
    let (_, degraded) = session.run_query_reported(&other, &mut sink).unwrap();
    assert_eq!(degraded.skipped, vec![1]);
    check(&obs, &session, "quarantine");
    assert!(obs.counter(names::CACHE_INVALIDATIONS_TOTAL) >= 1);
    assert_eq!(obs.counter(names::VOLUME_QUARANTINES_TOTAL), 1);
    assert!(obs.counter(names::IO_RETRIES_TOTAL) >= 1);

    let mut sink = CollectSink::new();
    session.run_query_reported(&query(), &mut sink).unwrap();
    check(&obs, &session, "degraded repeat");
    assert_eq!(obs.counter(names::QUERIES_TOTAL), 4);
}

#[test]
fn deadline_expiry_is_counted() {
    let db = Database::open(shared_db()).unwrap();
    let mut session = DbSession::new(&db, &cfg(), DbOptions::default()).unwrap();
    let obs = Obs::armed();
    session.set_obs(obs.clone());
    let mut sink = CollectSink::new();
    let expired = Deadline::after(Duration::ZERO);
    session
        .run_query_deadline(&query(), &mut sink, &expired)
        .expect_err("zero budget must expire");
    assert_eq!(obs.counter(names::DEADLINE_EXPIRIES_TOTAL), 1);
    // The failed query still opened (and closed) its latency span.
    let snap = obs.snapshot().unwrap();
    assert_eq!(snap.histograms[names::QUERY_SECONDS].count(), 1);
}
