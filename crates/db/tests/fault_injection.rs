//! Fault-injection suite: drives **every** database error path through
//! [`FaultyIo`] and asserts the exact [`DbError`] variant each failure
//! produces — no unreachable error arm — then pins the degraded-mode
//! contracts: quarantine under [`OnVolumeError::SkipAndReport`] (with
//! byte-identity of the surviving-volume results), bounded retry of
//! transient faults, per-query deadlines with an untouched sink, and
//! `verify_db`'s per-volume verdicts.

use std::error::Error as _;
use std::io::ErrorKind;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use oris_core::{CollectSink, Deadline, OrisConfig, RecordSink};
use oris_db::{
    make_db, verify_db, Database, DbError, DbOptions, DbSession, Fault, FaultRule, FaultyIo,
    MakeDbOptions, OnVolumeError, SearchReport, VerifyOptions, VolumeCause,
};
use oris_index::{AttachMode, PersistError};
use oris_seqio::{Bank, BankBuilder};

fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("oris_db_fault_test")
        .join(format!("{}_{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn bank(seqs: &[(&str, &str)]) -> Bank {
    let mut b = BankBuilder::new();
    for (name, s) in seqs {
        b.push_str(name, s).unwrap();
    }
    b.finish()
}

const CORE: &str = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGATCCGGTAAGCTACCGGTATTGACCGTA";

fn subject_records() -> Vec<(String, String)> {
    let mut recs = Vec::new();
    for i in 0..6 {
        recs.push((
            format!("subj{i}"),
            format!("CCGGAATTAT{CORE}GGTTAACCGG{}", "ACGT".repeat(5 + i)),
        ));
    }
    recs.push(("decoy".to_string(), "GCGCGCGCATATATATGCGCGCGC".to_string()));
    recs
}

fn subject_bank() -> Bank {
    let recs = subject_records();
    let refs: Vec<(&str, &str)> = recs.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
    bank(&refs)
}

fn cfg() -> OrisConfig {
    OrisConfig::small(8)
}

fn query() -> Bank {
    bank(&[("q", &format!("TT{CORE}GG"))])
}

/// Builds a multi-volume database, returning its directory.
fn build_db(test: &str) -> PathBuf {
    let dir = scratch(test);
    let subject = subject_bank();
    let per_volume = (subject.num_residues() / 3).max(1);
    let m = make_db([subject], &dir, &MakeDbOptions::new(&cfg(), per_volume)).unwrap();
    assert!(
        m.volumes.len() >= 3,
        "wanted ≥3 volumes, got {}",
        m.volumes.len()
    );
    dir
}

fn skip_opts() -> DbOptions {
    DbOptions {
        on_volume_error: OnVolumeError::SkipAndReport,
        retry_backoff: Duration::from_micros(50),
        ..DbOptions::default()
    }
}

/// Opens `dir` through an injector and runs one query under `opts`,
/// returning the outcome plus the report.
fn run_faulted(
    dir: &PathBuf,
    io: FaultyIo,
    opts: DbOptions,
) -> Result<(Vec<String>, SearchReport), DbError> {
    let db = Database::open_with_io(dir, Arc::new(io))?;
    let mut session = DbSession::new(&db, &cfg(), opts)?;
    let mut sink = CollectSink::new();
    let (_, report) = session.run_query_reported(&query(), &mut sink)?;
    Ok((
        sink.into_records().iter().map(|r| r.to_string()).collect(),
        report,
    ))
}

/// Expected results with no faults (the whole-database baseline).
fn baseline(dir: &PathBuf) -> Vec<String> {
    let db = Database::open(dir).unwrap();
    let mut session = DbSession::new(&db, &cfg(), DbOptions::default()).unwrap();
    let mut sink = CollectSink::new();
    session.run_query_into(&query(), &mut sink).unwrap();
    sink.into_records().iter().map(|r| r.to_string()).collect()
}

fn volume_cause(e: &DbError) -> &VolumeCause {
    match e {
        DbError::Volume(v) => &v.cause,
        other => panic!("expected DbError::Volume, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Every DbError variant, driven by injected faults.
// ---------------------------------------------------------------------

#[test]
fn manifest_read_failure_is_io() {
    let dir = build_db("man_io");
    let io = FaultyIo::with_rules([FaultRule::always(
        "manifest.orisdb",
        Fault::Error(ErrorKind::Other),
    )]);
    let e = Database::open_with_io(&dir, Arc::new(io)).unwrap_err();
    assert!(matches!(e, DbError::Io(..)), "{e:?}");
    assert_eq!(e.exit_code(), 4);
    // The source chain reaches the injected io::Error.
    assert!(e
        .source()
        .unwrap()
        .downcast_ref::<std::io::Error>()
        .is_some());
}

#[test]
fn manifest_corruption_is_manifest_error() {
    let dir = build_db("man_flip");
    // Flip one byte of the manifest body: the trailing FNV checksum must
    // catch it.
    let io = FaultyIo::with_rules([FaultRule::always(
        "manifest.orisdb",
        Fault::FlipByte {
            offset: 10,
            mask: 0x20,
        },
    )]);
    let e = Database::open_with_io(&dir, Arc::new(io)).unwrap_err();
    assert!(matches!(e, DbError::Manifest(_)), "{e:?}");
    assert_eq!(e.exit_code(), 2);
    assert!(e.to_string().contains("checksum"), "{e}");

    // Truncating past the checksum line is also caught.
    let io = FaultyIo::with_rules([FaultRule::always("manifest.orisdb", Fault::Truncate(30))]);
    let e = Database::open_with_io(&dir, Arc::new(io)).unwrap_err();
    assert!(matches!(e, DbError::Manifest(_)), "{e:?}");
}

#[test]
fn missing_volume_file_fails_open() {
    let dir = build_db("missing");
    let io = FaultyIo::with_rules([FaultRule::always("vol00001.fa", Fault::Missing)]);
    let e = Database::open_with_io(&dir, Arc::new(io)).unwrap_err();
    match &e {
        DbError::Volume(v) => {
            assert_eq!(v.volume, 1);
            assert!(matches!(v.cause, VolumeCause::Missing));
        }
        other => panic!("{other:?}"),
    }
    assert_eq!(e.exit_code(), 3);
}

#[test]
fn fasta_read_failure_is_volume_io() {
    let dir = build_db("fa_io");
    // Open sees the file (is_file passes); the attach-time read fails.
    let io = FaultyIo::with_rules([FaultRule::always(
        "vol00000.fa",
        Fault::Error(ErrorKind::Other),
    )]);
    let db = Database::open_with_io(&dir, Arc::new(io)).unwrap();
    let e = db.attach_volume(0, AttachMode::Mmap).unwrap_err();
    assert!(matches!(volume_cause(&e), VolumeCause::Io(_)), "{e:?}");
    // And the same fault surfaces from a session query under Fail.
    let io = FaultyIo::with_rules([FaultRule::always(
        "vol00000.fa",
        Fault::Error(ErrorKind::Other),
    )]);
    let e = run_faulted(&dir, io, DbOptions::default()).unwrap_err();
    assert!(matches!(volume_cause(&e), VolumeCause::Io(_)), "{e:?}");
}

#[test]
fn fasta_corruption_is_parse_or_hash_error() {
    let dir = build_db("fa_flip");
    // Byte 0 is the '>' of the first header: flipping it breaks parsing.
    let io = FaultyIo::with_rules([FaultRule::always(
        "vol00000.fa",
        Fault::FlipByte {
            offset: 0,
            mask: 0xFF,
        },
    )]);
    let db = Database::open_with_io(&dir, Arc::new(io)).unwrap();
    let e = db.attach_volume(0, AttachMode::Mmap).unwrap_err();
    assert!(matches!(volume_cause(&e), VolumeCause::Fasta(_)), "{e:?}");

    // Flipping a sequence byte to another valid base parses fine but
    // fails the manifest content-hash check ('A' ^ 0x06 = 'G').
    let bytes = std::fs::read(dir.join("vol00000.fa")).unwrap();
    let header_end = bytes.iter().position(|&b| b == b'\n').unwrap();
    let offset = header_end
        + 1
        + bytes[header_end + 1..]
            .iter()
            .position(|&b| b == b'A')
            .expect("sequence contains an A");
    let io = FaultyIo::with_rules([FaultRule::always(
        "vol00000.fa",
        Fault::FlipByte { offset, mask: 0x06 },
    )]);
    let db = Database::open_with_io(&dir, Arc::new(io)).unwrap();
    let e = db.attach_volume(0, AttachMode::Mmap).unwrap_err();
    assert!(
        matches!(volume_cause(&e), VolumeCause::HashMismatch { .. }),
        "{e:?}"
    );
    assert!(e.to_string().contains("content hash"), "{e}");
}

#[test]
fn index_corruptions_map_to_persist_errors() {
    type CauseCheck = fn(&PersistError) -> bool;
    let dir = build_db("idx");
    let cases: [(Fault, CauseCheck); 4] = [
        // Byte 0 is the magic.
        (
            Fault::FlipByte {
                offset: 0,
                mask: 0xFF,
            },
            |p| matches!(p, PersistError::BadMagic),
        ),
        // Byte 8 is the format version (little-endian u32).
        (
            Fault::FlipByte {
                offset: 8,
                mask: 0x40,
            },
            |p| matches!(p, PersistError::UnsupportedVersion(_)),
        ),
        // Truncation inside the header.
        (Fault::Truncate(40), |p| {
            matches!(p, PersistError::Corrupt(_))
        }),
        // A flipped byte in the section data trips the whole-stream
        // checksum (or a structural check — either is Corrupt).
        (
            Fault::FlipByte {
                offset: 100,
                mask: 0x01,
            },
            |p| matches!(p, PersistError::Corrupt(_)),
        ),
    ];
    for (fault, check) in cases {
        let io = FaultyIo::with_rules([FaultRule::always("vol00000.oidx", fault.clone())]);
        let db = Database::open_with_io(&dir, Arc::new(io)).unwrap();
        let e = db.attach_volume(0, AttachMode::Mmap).unwrap_err();
        match volume_cause(&e) {
            VolumeCause::Index(p) => assert!(check(p), "fault {fault:?} gave {p:?}"),
            other => panic!("fault {fault:?} gave {other:?}"),
        }
    }
    // An injected read error on the index stays classified as I/O, not
    // corruption.
    let io = FaultyIo::with_rules([FaultRule::always(
        "vol00000.oidx",
        Fault::Error(ErrorKind::Other),
    )]);
    let db = Database::open_with_io(&dir, Arc::new(io)).unwrap();
    let e = db.attach_volume(0, AttachMode::Mmap).unwrap_err();
    match volume_cause(&e) {
        VolumeCause::Index(PersistError::Io(_)) => {}
        other => panic!("{other:?}"),
    }
    // The chain bottoms out at the PersistError.
    assert!(e
        .source()
        .unwrap()
        .source()
        .unwrap()
        .downcast_ref::<PersistError>()
        .is_some());
}

#[test]
fn index_config_mismatch_is_detected() {
    // Build the same content under two seed lengths and cross-wire one
    // index file: content hashes agree, w does not.
    let dir_a = scratch("xwire_a");
    let dir_b = scratch("xwire_b");
    let per_volume = (subject_bank().num_residues() / 3).max(1);
    make_db(
        [subject_bank()],
        &dir_a,
        &MakeDbOptions::new(&cfg(), per_volume),
    )
    .unwrap();
    make_db(
        [subject_bank()],
        &dir_b,
        &MakeDbOptions::new(&OrisConfig::small(9), per_volume),
    )
    .unwrap();
    std::fs::copy(dir_b.join("vol00000.oidx"), dir_a.join("vol00000.oidx")).unwrap();
    let db = Database::open(&dir_a).unwrap();
    let e = db.attach_volume(0, AttachMode::Mmap).unwrap_err();
    match volume_cause(&e) {
        VolumeCause::Mismatch(msg) => assert!(msg.contains("w="), "{msg}"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn config_mismatch_is_config_error() {
    let dir = build_db("cfg");
    let db = Database::open(&dir).unwrap();
    let e = match DbSession::new(&db, &OrisConfig::small(9), DbOptions::default()) {
        Err(e) => e,
        Ok(_) => panic!("mismatched w must be rejected"),
    };
    assert!(matches!(e, DbError::Config(_)), "{e:?}");
    assert_eq!(e.exit_code(), 5);
}

/// A sink whose `end_query` always fails (a full output disk).
struct FailingSink;

impl RecordSink for FailingSink {
    fn accept(&mut self, _rec: oris_core::AlignmentRecord) {}
    fn end_query(&mut self) -> std::io::Result<()> {
        Err(std::io::Error::other("injected sink failure"))
    }
}

#[test]
fn sink_failure_is_sink_error() {
    let dir = build_db("sink");
    let db = Database::open(&dir).unwrap();
    let mut session = DbSession::new(&db, &cfg(), DbOptions::default()).unwrap();
    let e = session
        .run_query_into(&query(), &mut FailingSink)
        .unwrap_err();
    assert!(matches!(e, DbError::Sink(_)), "{e:?}");
    assert_eq!(e.exit_code(), 6);
}

// ---------------------------------------------------------------------
// Degraded mode: quarantine, retries, reports.
// ---------------------------------------------------------------------

#[test]
fn fail_policy_aborts_on_corrupt_volume() {
    let dir = build_db("fail_policy");
    let io = FaultyIo::with_rules([FaultRule::always(
        "vol00001.oidx",
        Fault::FlipByte {
            offset: 0,
            mask: 0xFF,
        },
    )]);
    let e = run_faulted(&dir, io, DbOptions::default()).unwrap_err();
    assert!(matches!(e, DbError::Volume(_)), "{e:?}");
}

#[test]
fn skip_and_report_completes_over_survivors_byte_identically() {
    let dir = build_db("skip");
    let full = baseline(&dir);
    let manifest = Database::open(&dir).unwrap();
    let total = manifest.total_residues();
    let vol_meta: Vec<(u64, u64)> = (0..manifest.num_volumes())
        .map(|v| (manifest.volume(v).sequences, manifest.volume(v).residues))
        .collect();
    drop(manifest);

    let io = FaultyIo::with_rules([FaultRule::always(
        "vol00001.oidx",
        Fault::FlipByte {
            offset: 0,
            mask: 0xFF,
        },
    )]);
    let (records, report) = run_faulted(&dir, io, skip_opts()).unwrap();

    assert_eq!(report.skipped, vec![1]);
    assert_eq!(report.retries, 0, "BadMagic is durable — never retried");
    assert_eq!(report.searched.len(), report.volumes_total - 1);
    assert!(!report.is_complete());
    let expected_cov = (total - vol_meta[1].1) as f64 / total as f64;
    assert!((report.coverage() - expected_cov).abs() < 1e-12);

    // Byte-identity: the degraded output equals a database built without
    // volume 1's sequences, priced against the FULL residue total (a
    // degraded search under-reports hits, it never re-prices them).
    let skip_start: u64 = vol_meta[0].0;
    let skip_end = skip_start + vol_meta[1].0;
    let recs = subject_records();
    let surviving: Vec<(&str, &str)> = recs
        .iter()
        .enumerate()
        .filter(|(i, _)| (*i as u64) < skip_start || (*i as u64) >= skip_end)
        .map(|(_, (n, s))| (n.as_str(), s.as_str()))
        .collect();
    let ref_dir = scratch("skip_ref");
    let per_volume = (subject_bank().num_residues() / 3).max(1);
    make_db(
        [bank(&surviving)],
        &ref_dir,
        &MakeDbOptions::new(&cfg(), per_volume),
    )
    .unwrap();
    let ref_db = Database::open(&ref_dir).unwrap();
    let mut ref_cfg = cfg();
    ref_cfg.subject_space = oris_eval::SubjectSpace::Database(total);
    let mut ref_session = DbSession::new(&ref_db, &ref_cfg, DbOptions::default()).unwrap();
    let mut ref_sink = CollectSink::new();
    ref_session.run_query_into(&query(), &mut ref_sink).unwrap();
    let reference: Vec<String> = ref_sink
        .into_records()
        .iter()
        .map(|r| r.to_string())
        .collect();

    assert_eq!(records, reference);
    assert_ne!(records, full, "the corrupt volume's hits must be absent");
}

#[test]
fn quarantine_persists_and_is_not_reprobed() {
    let dir = build_db("quarantine");
    let io = Arc::new(FaultyIo::with_rules([FaultRule::always(
        "vol00001.oidx",
        Fault::FlipByte {
            offset: 0,
            mask: 0xFF,
        },
    )]));
    let db = Database::open_with_io(&dir, io.clone()).unwrap();
    let mut session = DbSession::new(&db, &cfg(), skip_opts()).unwrap();

    let mut sink = CollectSink::new();
    let (_, r1) = session.run_query_reported(&query(), &mut sink).unwrap();
    assert_eq!(r1.skipped, vec![1]);
    let quarantined: Vec<usize> = session.quarantined().map(|(v, _)| v).collect();
    assert_eq!(quarantined, vec![1]);

    // Second query: every surviving volume is cached, the quarantined one
    // is skipped without touching its files — zero I/O operations.
    let ops_before = io.operations();
    let (_, r2) = session.run_query_reported(&query(), &mut sink).unwrap();
    assert_eq!(r2.skipped, vec![1]);
    assert_eq!(
        io.operations(),
        ops_before,
        "a quarantined volume must not be re-probed"
    );
    // And both queries' surviving results agree.
    assert_eq!(r1.searched, r2.searched);
}

#[test]
fn transient_fault_recovers_after_retry() {
    let dir = build_db("retry_ok");
    // First read of the volume FASTA fails with a transient kind; the
    // retry's read succeeds.
    let io = FaultyIo::with_rules([FaultRule::first(
        "vol00001.fa",
        1,
        Fault::Error(ErrorKind::Interrupted),
    )]);
    let (records, report) = run_faulted(&dir, io, skip_opts()).unwrap();
    assert_eq!(report.retries, 1);
    assert!(report.is_complete(), "{report:?}");
    assert_eq!(records, baseline(&dir), "a recovered query is unaffected");
}

#[test]
fn retry_exhaustion_quarantines() {
    let dir = build_db("retry_exhaust");
    let io = FaultyIo::with_rules([FaultRule::always(
        "vol00001.fa",
        Fault::Error(ErrorKind::Interrupted),
    )]);
    let opts = DbOptions {
        retries: 2,
        ..skip_opts()
    };
    let (_, report) = run_faulted(&dir, io, opts).unwrap();
    assert_eq!(report.retries, 2, "retried exactly `retries` times");
    assert_eq!(report.skipped, vec![1]);
}

#[test]
fn durable_faults_are_never_retried() {
    let dir = build_db("no_retry");
    let io = FaultyIo::with_rules([FaultRule::always(
        "vol00001.fa",
        Fault::Error(ErrorKind::PermissionDenied),
    )]);
    let (_, report) = run_faulted(&dir, io, skip_opts()).unwrap();
    assert_eq!(report.retries, 0);
    assert_eq!(report.skipped, vec![1]);
}

#[test]
fn no_fault_injector_path_is_byte_identical() {
    // SkipAndReport + a (generous) deadline through a rule-less injector
    // must not change a single byte of output.
    let dir = build_db("nofault");
    let opts = DbOptions {
        deadline: Some(Duration::from_secs(3600)),
        ..skip_opts()
    };
    let (records, report) = run_faulted(&dir, FaultyIo::new(), opts).unwrap();
    assert!(report.is_complete());
    assert_eq!(report.coverage(), 1.0);
    assert_eq!(
        report.searched,
        (0..report.volumes_total).collect::<Vec<_>>()
    );
    assert_eq!(records, baseline(&dir));
}

// ---------------------------------------------------------------------
// Deadlines.
// ---------------------------------------------------------------------

#[test]
fn expired_deadline_fails_cleanly_and_session_survives() {
    let dir = build_db("deadline");
    let db = Database::open(&dir).unwrap();
    let mut session = DbSession::new(&db, &cfg(), DbOptions::default()).unwrap();
    let mut sink = CollectSink::new();

    let e = session
        .run_query_deadline(&query(), &mut sink, &Deadline::after(Duration::ZERO))
        .unwrap_err();
    assert!(matches!(e, DbError::DeadlineExceeded(_)), "{e:?}");
    assert_eq!(e.exit_code(), 7);
    assert_eq!(
        sink.records().len(),
        0,
        "an expired query must leave the sink untouched"
    );
    assert_eq!(
        session.quarantined().count(),
        0,
        "slowness is not corruption"
    );

    // The session is fully usable afterwards.
    let (_, report) = session
        .run_query_deadline(&query(), &mut sink, &Deadline::none())
        .unwrap();
    assert!(report.is_complete());
    let records: Vec<String> = sink.into_records().iter().map(|r| r.to_string()).collect();
    assert_eq!(records, baseline(&dir));
}

#[test]
fn generous_deadline_is_byte_identical() {
    let dir = build_db("deadline_ok");
    let db = Database::open(&dir).unwrap();
    let mut session = DbSession::new(&db, &cfg(), DbOptions::default()).unwrap();
    let mut sink = CollectSink::new();
    session
        .run_query_deadline(
            &query(),
            &mut sink,
            &Deadline::after(Duration::from_secs(3600)),
        )
        .unwrap();
    let records: Vec<String> = sink.into_records().iter().map(|r| r.to_string()).collect();
    assert_eq!(records, baseline(&dir));
}

#[test]
fn slow_volume_trips_the_deadline() {
    let dir = build_db("deadline_slow");
    // One slow device read (50 ms) against a 5 ms budget: the boundary
    // check after the delayed attach fires. (`skip: 1` lets the open-time
    // existence probe through so the delay lands on the attach read.)
    let io = FaultyIo::with_rules([FaultRule {
        file: Some("vol00000.fa".into()),
        skip: 1,
        times: 1,
        fault: Fault::Delay(Duration::from_millis(50)),
    }]);
    let db = Database::open_with_io(&dir, Arc::new(io)).unwrap();
    let mut session = DbSession::new(&db, &cfg(), DbOptions::default()).unwrap();
    let mut sink = CollectSink::new();
    let e = session
        .run_query_deadline(
            &query(),
            &mut sink,
            &Deadline::after(Duration::from_millis(5)),
        )
        .unwrap_err();
    assert!(matches!(e, DbError::DeadlineExceeded(_)), "{e:?}");
    assert_eq!(sink.records().len(), 0);
    // The slow (not corrupt) volume was not quarantined, and the session
    // recovers once the transient slowness clears.
    session
        .run_query_deadline(&query(), &mut sink, &Deadline::none())
        .unwrap();
    let records: Vec<String> = sink.into_records().iter().map(|r| r.to_string()).collect();
    assert_eq!(records, baseline(&dir));
}

#[test]
fn cancellation_token_stops_the_query() {
    let dir = build_db("cancel");
    let db = Database::open(&dir).unwrap();
    let mut session = DbSession::new(&db, &cfg(), DbOptions::default()).unwrap();
    let mut sink = CollectSink::new();
    let token = Deadline::cancellable();
    token.cancel();
    let e = session
        .run_query_deadline(&query(), &mut sink, &token)
        .unwrap_err();
    assert!(matches!(e, DbError::DeadlineExceeded(_)), "{e:?}");
    assert_eq!(sink.records().len(), 0);
}

// ---------------------------------------------------------------------
// verify_db.
// ---------------------------------------------------------------------

#[test]
fn verify_db_passes_a_clean_database() {
    let dir = build_db("verify_ok");
    for attach in [AttachMode::Mmap, AttachMode::HeapCopy] {
        let report = verify_db(&dir, Arc::new(FaultyIo::new()), &VerifyOptions { attach }).unwrap();
        assert!(report.is_ok());
        assert_eq!(report.exit_code(), 0);
        assert!(report.volumes.iter().all(|v| v.is_ok()));
    }
}

#[test]
fn verify_db_names_exactly_the_corrupt_volume() {
    let dir = build_db("verify_bad");
    let io = FaultyIo::with_rules([FaultRule::always(
        "vol00001.oidx",
        Fault::FlipByte {
            offset: 0,
            mask: 0xFF,
        },
    )]);
    let report = verify_db(&dir, Arc::new(io), &VerifyOptions::default()).unwrap();
    assert!(!report.is_ok());
    assert_eq!(report.exit_code(), 3);
    let failed: Vec<usize> = report.failures().map(|v| v.volume).collect();
    assert_eq!(failed, vec![1], "exactly volume 1 must fail");
    let verdict = &report.volumes[1];
    match verdict.error.as_ref().map(volume_cause) {
        Some(VolumeCause::Index(PersistError::BadMagic)) => {}
        other => panic!("{other:?}"),
    }
}

#[test]
fn verify_db_reports_missing_volumes_per_volume() {
    let dir = build_db("verify_missing");
    let io = FaultyIo::with_rules([FaultRule::always("vol00000.fa", Fault::Missing)]);
    let report = verify_db(&dir, Arc::new(io), &VerifyOptions::default()).unwrap();
    let failed: Vec<usize> = report.failures().map(|v| v.volume).collect();
    assert_eq!(failed, vec![0]);
}

#[test]
fn verify_db_rejects_a_corrupt_manifest_outright() {
    let dir = build_db("verify_man");
    let io = FaultyIo::with_rules([FaultRule::always(
        "manifest.orisdb",
        Fault::FlipByte {
            offset: 5,
            mask: 0x08,
        },
    )]);
    let e = verify_db(&dir, Arc::new(io), &VerifyOptions::default()).unwrap_err();
    assert!(matches!(e, DbError::Manifest(_)), "{e:?}");
    assert_eq!(e.exit_code(), 2);
}
