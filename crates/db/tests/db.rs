//! Integration tests for the sharded database: makedb splitting, open
//! validation, and the cross-volume search contract (byte-identical to a
//! single-bank run over the concatenated input, shard-invariant
//! e-values, attach-mode equivalence, bounded windows).

use oris_core::{CollectSink, FilterKind, OrisConfig, Session};
use oris_db::{make_db, Database, DbOptions, DbSession, MakeDbOptions};
use oris_eval::SubjectSpace;
use oris_index::AttachMode;
use oris_seqio::{Bank, BankBuilder};
use std::path::PathBuf;

fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("oris_db_test")
        .join(format!("{}_{test}", std::process::id()));
    // A previous run's directory would make make_db refuse (manifest
    // exists); start clean.
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn bank(seqs: &[(&str, &str)]) -> Bank {
    let mut b = BankBuilder::new();
    for (name, s) in seqs {
        b.push_str(name, s).unwrap();
    }
    b.finish()
}

const CORE: &str = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGATCCGGTAAGCTACCGGTATTGACCGTA";

/// A subject collection big enough to shard: several records sharing the
/// core (so queries hit multiple volumes) plus decoys.
fn subject_records() -> Vec<(String, String)> {
    let mut recs = Vec::new();
    for i in 0..6 {
        recs.push((
            format!("subj{i}"),
            format!("CCGGAATTAT{CORE}GGTTAACCGG{}", "ACGT".repeat(5 + i)),
        ));
    }
    recs.push(("decoy".to_string(), "GCGCGCGCATATATATGCGCGCGC".to_string()));
    recs
}

fn subject_bank() -> Bank {
    let recs = subject_records();
    let refs: Vec<(&str, &str)> = recs.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
    bank(&refs)
}

fn small_cfg() -> OrisConfig {
    OrisConfig::small(8)
}

/// Builds a database from the standard subject split into roughly
/// `volumes` volumes, returning its directory.
fn build_db(test: &str, cfg: &OrisConfig, volumes: usize) -> PathBuf {
    let dir = scratch(test);
    let subject = subject_bank();
    let per_volume = (subject.num_residues() / volumes).max(1);
    let m = make_db([subject], &dir, &MakeDbOptions::new(cfg, per_volume)).unwrap();
    assert!(
        m.volumes.len() >= volumes.min(2),
        "wanted ≥{} volumes, got {}",
        volumes.min(2),
        m.volumes.len()
    );
    dir
}

#[test]
fn makedb_splits_and_manifest_adds_up() {
    let dir = scratch("split");
    let subject = subject_bank();
    let total = subject.num_residues() as u64;
    let m = make_db([subject], &dir, &MakeDbOptions::new(&small_cfg(), 200)).unwrap();
    assert!(m.volumes.len() > 1, "200-residue budget must shard");
    assert_eq!(m.total_residues, total);
    assert_eq!(
        m.volumes.iter().map(|v| v.residues).sum::<u64>(),
        m.total_residues
    );
    assert_eq!(
        m.volumes.iter().map(|v| v.sequences).sum::<u64>(),
        subject_records().len() as u64
    );
    // Every volume stays within budget unless it holds a single oversized
    // sequence.
    for v in &m.volumes {
        assert!(v.residues <= 200 || v.sequences == 1, "{v:?}");
    }
    // The directory reopens and every volume attaches under both modes.
    let db = Database::open(&dir).unwrap();
    assert_eq!(db.total_residues(), total);
    for i in 0..db.num_volumes() {
        let (mapped, s) = db.attach_volume(i, AttachMode::Mmap).unwrap();
        assert!(s.mmap_backed);
        assert!(mapped.index().is_mmap_backed());
        let (copied, s) = db.attach_volume(i, AttachMode::HeapCopy).unwrap();
        assert!(!s.mmap_backed);
        assert_eq!(mapped.index().positions(), copied.index().positions());
    }
}

#[test]
fn makedb_refuses_rebuild_and_empty_input() {
    let dir = scratch("refuse");
    let opts = MakeDbOptions::new(&small_cfg(), 1000);
    make_db([subject_bank()], &dir, &opts).unwrap();
    let err = make_db([subject_bank()], &dir, &opts).unwrap_err();
    assert!(err.to_string().contains("already exists"), "{err}");

    let empty_dir = scratch("empty");
    let err = make_db([Bank::empty()], &empty_dir, &opts).unwrap_err();
    assert!(err.to_string().contains("no sequences"), "{err}");
}

#[test]
fn open_rejects_missing_and_tampered_volumes() {
    let cfg = small_cfg();
    let dir = build_db("tamper", &cfg, 3);
    let db = Database::open(&dir).unwrap();
    let vol0_fa = dir.join(&db.volume(0).fasta);

    // Tampered volume content (same length): the manifest hash check at
    // attach must catch it.
    let original = std::fs::read_to_string(&vol0_fa).unwrap();
    let tampered = original.replacen("ATGGCG", "ATGGCC", 1);
    assert_ne!(original, tampered);
    std::fs::write(&vol0_fa, &tampered).unwrap();
    let err = db.attach_volume(0, AttachMode::Mmap).unwrap_err();
    assert!(err.to_string().contains("content hash"), "{err}");
    std::fs::write(&vol0_fa, &original).unwrap();
    assert!(db.attach_volume(0, AttachMode::Mmap).is_ok());

    // Missing volume file: refused at open, with the file named.
    std::fs::remove_file(&vol0_fa).unwrap();
    let err = Database::open(&dir).unwrap_err();
    assert!(err.to_string().contains("missing"), "{err}");
}

#[test]
fn session_rejects_mismatched_config() {
    let cfg = small_cfg();
    let dir = build_db("mismatch", &cfg, 2);
    let db = Database::open(&dir).unwrap();

    let wrong_w = OrisConfig::small(7);
    let err = match DbSession::new(&db, &wrong_w, DbOptions::default()) {
        Err(e) => e,
        Ok(_) => panic!("wrong word length must be rejected"),
    };
    assert!(err.to_string().contains("w="), "{err}");

    let mut wrong_filter = cfg;
    wrong_filter.filter = FilterKind::Dust;
    let err = match DbSession::new(&db, &wrong_filter, DbOptions::default()) {
        Err(e) => e,
        Ok(_) => panic!("wrong filter must be rejected"),
    };
    assert!(err.to_string().contains("filter"), "{err}");

    let mut wrong_stride = cfg;
    wrong_stride.asymmetric = true;
    assert!(DbSession::new(&db, &wrong_stride, DbOptions::default()).is_err());
}

/// The tentpole equivalence: multi-volume search ≡ single-bank search
/// over the concatenated input, when both price e-values over the same
/// database-wide space — across attach modes, window sizes and strands.
#[test]
fn db_search_matches_concatenated_bank() {
    let queries = [
        bank(&[("q1", &format!("TTGACCGTAA{CORE}CCGGTAAGCT"))]),
        bank(&[("q2", CORE), ("q3", "GGTTCCAAGGTTCCAAGGTTCCAA")]),
    ];
    for both_strands in [false, true] {
        let mut cfg = small_cfg();
        cfg.both_strands = both_strands;
        let dir = build_db(&format!("equiv_{both_strands}"), &cfg, 3);
        let db = Database::open(&dir).unwrap();

        // Reference: one Session over the whole subject as a single bank,
        // under the database-wide search-space convention.
        let subject = subject_bank();
        let mut ref_cfg = cfg;
        ref_cfg.subject_space = SubjectSpace::Database(db.total_residues());
        let reference = Session::new(&subject, &ref_cfg).unwrap();

        for attach in [AttachMode::Mmap, AttachMode::HeapCopy] {
            for window in [0usize, 1] {
                let mut session = DbSession::new(
                    &db,
                    &cfg,
                    DbOptions {
                        attach,
                        window,
                        ..DbOptions::default()
                    },
                )
                .unwrap();
                for q in &queries {
                    let via_db = session.run_query(q).unwrap();
                    let via_bank = reference.run(q);
                    assert_eq!(
                        via_db.alignments, via_bank.alignments,
                        "attach={attach:?} window={window} both_strands={both_strands}"
                    );
                    assert!(
                        !via_db.alignments.is_empty() || q.record(0).name == "q2",
                        "homologous query must produce records"
                    );
                    // The query's build is attributed once, not per
                    // volume.
                    assert_eq!(via_db.stats.index_builds, 1);
                }
            }
        }
    }
}

/// E-values must not depend on the sharding: the same search against a
/// 1-volume and a many-volume build of the same collection reports
/// identical records.
#[test]
fn evalues_are_shard_invariant() {
    let cfg = small_cfg();
    let one = build_db("shard_one", &cfg, 1);
    let many = build_db("shard_many", &cfg, 4);
    let db_one = Database::open(&one).unwrap();
    let db_many = Database::open(&many).unwrap();
    assert_eq!(db_one.total_residues(), db_many.total_residues());
    assert!(db_many.num_volumes() > db_one.num_volumes());

    let query = bank(&[("q", &format!("AACC{CORE}TTGG"))]);
    let mut s1 = DbSession::new(&db_one, &cfg, DbOptions::default()).unwrap();
    let mut sn = DbSession::new(&db_many, &cfg, DbOptions::default()).unwrap();
    let r1 = s1.run_query(&query).unwrap();
    let rn = sn.run_query(&query).unwrap();
    assert!(!r1.alignments.is_empty());
    assert_eq!(r1.alignments, rn.alignments);
}

#[test]
fn failed_query_leaves_the_sink_untouched() {
    // Error atomicity under the unbounded window (the serving default):
    // all volumes attach BEFORE the first record flows, so a volume
    // whose index file vanished after Database::open (here: deleted,
    // with earlier volumes still fine) fails the query with the caller's
    // sink seeing no records and no boundary — a partial query must
    // never merge into the next query's boundary sort.
    let cfg = small_cfg();
    let dir = build_db("sink_atomic", &cfg, 3);
    let db = Database::open(&dir).unwrap();
    let query = bank(&[("q", &format!("TT{CORE}GG"))]);
    // Sanity: the intact database produces records (from volume 0 too).
    let mut intact = DbSession::new(&db, &cfg, DbOptions::default()).unwrap();
    assert!(!intact.run_query(&query).unwrap().alignments.is_empty());

    let last = db.num_volumes() - 1;
    std::fs::remove_file(dir.join(&db.volume(last).index)).unwrap();
    // Fresh session: nothing cached, so the query must attach — and the
    // attach-ahead fails before volume 0's records could leak out.
    let mut session = DbSession::new(&db, &cfg, DbOptions::default()).unwrap();
    let mut sink = CollectSink::new();
    assert!(session.run_query_into(&query, &mut sink).is_err());
    assert!(
        sink.records().is_empty(),
        "failed query leaked partial records into the sink"
    );
}

#[test]
fn window_eviction_is_not_pathological_for_the_cyclic_scan() {
    // Regression: with plain LRU, a window of V−1 on a V-volume database
    // evicted every entry just before its reuse (0% hit rate — the same
    // attach count as window=1). The furthest-next-use policy must reuse
    // most of the window across queries.
    let cfg = small_cfg();
    let dir = build_db("eviction", &cfg, 3);
    let db = Database::open(&dir).unwrap();
    let volumes = db.num_volumes();
    assert!(volumes >= 3);
    let window = volumes - 1;

    let query = bank(&[("q", &format!("TT{CORE}GG"))]);
    let mut session = DbSession::new(
        &db,
        &cfg,
        DbOptions {
            attach: AttachMode::Mmap,
            window,
            ..DbOptions::default()
        },
    )
    .unwrap();
    let num_queries = 4usize;
    for _ in 0..num_queries {
        session.run_query(&query).unwrap();
    }
    let total: u32 = session.volume_costs().iter().map(|c| c.attaches).sum();
    // Worst case (the LRU pathology) is one attach per (query, volume).
    let pathological = (num_queries * volumes) as u32;
    // The first query must attach everything once; later queries pay at
    // most the volumes the bounded window genuinely cannot hold
    // (V − window + 1 per query for this scan).
    let bound = (volumes + (num_queries - 1) * (volumes - window + 1)) as u32;
    assert!(
        total <= bound && total < pathological,
        "window {window} of {volumes} volumes: {total} attaches \
         (bound {bound}, pathological {pathological})"
    );
}

#[test]
fn batch_streams_one_boundary_per_query_and_counts_attaches() {
    /// Counts end_query boundaries to pin the cross-volume contract: one
    /// boundary per query, not per (query, volume).
    struct BoundaryCounter {
        inner: CollectSink,
        boundaries: usize,
    }
    impl oris_core::RecordSink for BoundaryCounter {
        fn accept(&mut self, rec: oris_eval::M8Record) {
            self.inner.accept(rec);
        }
        fn end_query(&mut self) -> std::io::Result<()> {
            self.boundaries += 1;
            self.inner.end_query()
        }
    }

    let cfg = small_cfg();
    let dir = build_db("batch", &cfg, 3);
    let db = Database::open(&dir).unwrap();
    let queries = vec![
        bank(&[("q1", &format!("TT{CORE}GG"))]),
        bank(&[("q2", "GGTTCCAAGGTTCCAAGGTTCCAA")]),
        bank(&[("q3", CORE)]),
    ];

    // Window 0: every volume attached exactly once for the whole batch.
    let mut session = DbSession::new(&db, &cfg, DbOptions::default()).unwrap();
    let mut sink = BoundaryCounter {
        inner: CollectSink::new(),
        boundaries: 0,
    };
    let batch = session.run_batch(&queries, &mut sink).unwrap();
    assert_eq!(batch.queries(), 3);
    assert_eq!(sink.boundaries, 3);
    assert_eq!(batch.total_records() as usize, sink.inner.records().len());
    assert_eq!(batch.volumes.len(), db.num_volumes());
    for v in &batch.volumes {
        assert_eq!(v.attaches, 1, "window 0 attaches each volume once");
    }
    assert_eq!(batch.total_attaches() as usize, db.num_volumes());

    // Window 1: one volume resident at a time — each query walks all
    // volumes, so each volume re-attaches per query.
    let mut bounded = DbSession::new(
        &db,
        &cfg,
        DbOptions {
            attach: AttachMode::Mmap,
            window: 1,
            ..DbOptions::default()
        },
    )
    .unwrap();
    let mut sink2 = CollectSink::new();
    let batch2 = bounded.run_batch(&queries, &mut sink2).unwrap();
    for v in &batch2.volumes {
        assert_eq!(v.attaches as usize, queries.len());
    }
    assert_eq!(sink.inner.records(), sink2.records());
}
