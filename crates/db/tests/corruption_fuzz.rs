//! Byte-mutation fuzz: random single-byte flips and truncations of the
//! manifest and the v2 index files must never panic the loaders, and
//! never be silently accepted where a checksum vouches for the bytes.
//!
//! Two layers are driven:
//!
//! * the manifest parser, through [`FaultyIo`] (its trailing FNV-1a
//!   checksum must refuse any body mutation);
//! * the real index attach paths — **both** [`AttachMode::Mmap`] and
//!   [`AttachMode::HeapCopy`] against mutated bytes on disk — which must
//!   reject every mutation via header validation or the whole-stream
//!   checksum.

use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

use oris_core::OrisConfig;
use oris_db::{make_db, Database, Fault, FaultRule, FaultyIo, MakeDbOptions};
use oris_index::AttachMode;
use oris_seqio::BankBuilder;
use proptest::prelude::*;

/// One pristine database, built once for the whole fuzz run: its
/// directory, the manifest bytes, and vol00000.oidx's bytes.
fn fixture() -> &'static (PathBuf, Vec<u8>, Vec<u8>) {
    static FIXTURE: OnceLock<(PathBuf, Vec<u8>, Vec<u8>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = std::env::temp_dir()
            .join("oris_db_fuzz")
            .join(format!("fixture_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut b = BankBuilder::new();
        for i in 0..4 {
            b.push_str(
                &format!("s{i}"),
                &"ATGGCGTACGTTAGCCTAGGCTTAACGGATCGATCCGGTAAGCTACCGGTA".repeat(2),
            )
            .unwrap();
        }
        let subject = b.finish();
        let per_volume = subject.num_residues() / 2;
        make_db(
            [subject],
            &dir,
            &MakeDbOptions::new(&OrisConfig::small(8), per_volume),
        )
        .unwrap();
        let manifest = std::fs::read(dir.join("manifest.orisdb")).unwrap();
        let index = std::fs::read(dir.join("vol00000.oidx")).unwrap();
        (dir, manifest, index)
    })
}

/// Writes `bytes` to a fresh scratch file and returns its path.
fn mutated_file(bytes: &[u8]) -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join("oris_db_fuzz").join("mutants");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!(
        "{}_{}.oidx",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&path, bytes).unwrap();
    path
}

/// Start of the manifest's trailing checksum line (the body before it is
/// what the checksum vouches for).
fn manifest_body_end(manifest: &[u8]) -> usize {
    let text = std::str::from_utf8(manifest).unwrap();
    text.rfind("checksum ").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any single-byte flip in the manifest body is refused (the trailing
    /// checksum vouches for it), and no flip anywhere panics the parser.
    #[test]
    fn manifest_flips_never_panic_never_pass(
        offset_sel in 0usize..1_000_000,
        mask in 1u8..=255,
    ) {
        let (dir, manifest, _) = fixture();
        let offset = offset_sel % manifest.len();
        let io = FaultyIo::with_rules([FaultRule::always(
            "manifest.orisdb",
            Fault::FlipByte { offset, mask },
        )]);
        let result = Database::open_with_io(dir, Arc::new(io));
        if offset < manifest_body_end(manifest) {
            prop_assert!(result.is_err(), "body flip at {offset} (mask {mask:#x}) accepted");
        }
        // Flips inside the checksum line itself may be semantically
        // neutral (hex case, trailing whitespace); not panicking is the
        // contract there.
    }

    /// Truncating the manifest anywhere before its checksum line is
    /// refused; truncating anywhere never panics.
    #[test]
    fn manifest_truncations_never_panic_never_pass(len_sel in 0usize..1_000_000) {
        let (dir, manifest, _) = fixture();
        let len = len_sel % manifest.len();
        let io = FaultyIo::with_rules([FaultRule::always(
            "manifest.orisdb",
            Fault::Truncate(len),
        )]);
        let result = Database::open_with_io(dir, Arc::new(io));
        if len < manifest_body_end(manifest) {
            prop_assert!(result.is_err(), "truncation to {len} bytes accepted");
        }
    }

    /// Any single-byte flip of a v2 index file is rejected by BOTH attach
    /// modes — header validation or the whole-stream checksum — and
    /// neither loader panics.
    #[test]
    fn index_flips_never_panic_never_pass(
        offset_sel in 0usize..1_000_000,
        mask in 1u8..=255,
    ) {
        let (_, _, index) = fixture();
        let offset = offset_sel % index.len();
        let mut bytes = index.clone();
        bytes[offset] ^= mask;
        let path = mutated_file(&bytes);
        for mode in [AttachMode::Mmap, AttachMode::HeapCopy] {
            let result = oris_index::attach_index_file(&path, mode);
            prop_assert!(
                result.is_err(),
                "{mode:?} accepted a flip at {offset} (mask {mask:#x})"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    /// Any truncation of a v2 index file is rejected by both attach
    /// modes without panicking.
    #[test]
    fn index_truncations_never_panic_never_pass(len_sel in 0usize..1_000_000) {
        let (_, _, index) = fixture();
        let len = len_sel % index.len();
        let path = mutated_file(&index[..len]);
        for mode in [AttachMode::Mmap, AttachMode::HeapCopy] {
            let result = oris_index::attach_index_file(&path, mode);
            prop_assert!(result.is_err(), "{mode:?} accepted truncation to {len} bytes");
        }
        std::fs::remove_file(&path).ok();
    }

    /// The same mutations driven through the full database attach path
    /// (FaultyIo) surface as typed volume errors, never panics.
    #[test]
    fn db_attach_survives_index_mutations(
        offset_sel in 0usize..1_000_000,
        mask in 1u8..=255,
        truncate_sel in 0u8..2,
    ) {
        let (dir, _, index) = fixture();
        let offset = offset_sel % index.len();
        let fault = if truncate_sel == 1 {
            Fault::Truncate(offset)
        } else {
            Fault::FlipByte { offset, mask }
        };
        let io = FaultyIo::with_rules([FaultRule::always("vol00000.oidx", fault)]);
        let db = Database::open_with_io(dir, Arc::new(io)).unwrap();
        let e = db.attach_volume(0, AttachMode::Mmap).unwrap_err();
        prop_assert!(matches!(e, oris_db::DbError::Volume(_)), "{e:?}");
    }
}
