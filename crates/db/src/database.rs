//! Opening a database directory and attaching its volumes.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use oris_core::PreparedBank;
use oris_index::persist::fnv1a;
use oris_index::{AttachMode, IndexMeta};
use oris_obs::Stopwatch;

use crate::io::{RealIo, VolumeIo};
use crate::manifest::{Manifest, VolumeMeta, MANIFEST_FILE};

pub use crate::error::{DbError, VolumeCause, VolumeError};

/// Cost and provenance of one volume attach (step-1 work the database
/// session performs instead of an index build).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttachedVolumeStats {
    /// Seconds spent mapping/reading the index file and re-reading the
    /// volume FASTA (index build time is always 0 on this path).
    pub attach_secs: f64,
    /// Heap bytes of the attached index (near-zero for an mmap attach —
    /// the big sections stay in the page cache).
    pub index_heap_bytes: usize,
    /// Whether the index sections are mmap-backed.
    pub mmap_backed: bool,
}

/// An opened sharded subject database: a validated [`Manifest`] plus the
/// directory its volume files live in. Opening touches only the manifest
/// (and checks the volume files exist); volumes are attached lazily by
/// [`Database::attach_volume`] or a [`crate::DbSession`].
///
/// Every file the database reads goes through its [`VolumeIo`] — the
/// real filesystem under [`Database::open`], or an injected
/// [`crate::FaultyIo`] under [`Database::open_with_io`], which is how
/// the fault-injection suite drives every error path below from tests.
#[derive(Debug, Clone)]
pub struct Database {
    dir: PathBuf,
    manifest: Manifest,
    io: Arc<dyn VolumeIo>,
}

impl Database {
    /// Opens the database at `dir`: parses and validates the manifest and
    /// verifies every volume's FASTA and index files exist.
    pub fn open(dir: impl AsRef<Path>) -> Result<Database, DbError> {
        Database::open_with_io(dir, Arc::new(RealIo))
    }

    /// [`Database::open`] with an explicit [`VolumeIo`] (fault injection,
    /// instrumentation). All subsequent reads — every attach — go through
    /// the same `io`.
    pub fn open_with_io(dir: impl AsRef<Path>, io: Arc<dyn VolumeIo>) -> Result<Database, DbError> {
        let dir = dir.as_ref().to_path_buf();
        let manifest_path = dir.join(MANIFEST_FILE);
        let bytes = io
            .read(&manifest_path)
            .map_err(|e| DbError::Io(manifest_path.clone(), e))?;
        let text = String::from_utf8(bytes)
            .map_err(|_| DbError::Manifest("manifest is not valid UTF-8".into()))?;
        let manifest = Manifest::parse(&text).map_err(DbError::Manifest)?;
        let db = Database { dir, manifest, io };
        for v in 0..db.num_volumes() {
            let meta = db.volume(v);
            for name in [&meta.fasta, &meta.index] {
                let p = db.dir.join(name);
                if !db.io.is_file(&p) {
                    return Err(db.volume_error(v, p, VolumeCause::Missing));
                }
            }
        }
        Ok(db)
    }

    /// Opens without the per-volume existence check: the manifest is
    /// still fully validated, but missing or unreadable volume files
    /// surface per-volume at attach time instead of failing the open.
    /// This is `verifydb`'s entry point — a database with one rotten
    /// volume must still yield a per-volume report, not a refusal to
    /// look.
    pub fn open_unchecked(
        dir: impl AsRef<Path>,
        io: Arc<dyn VolumeIo>,
    ) -> Result<Database, DbError> {
        let dir = dir.as_ref().to_path_buf();
        let manifest_path = dir.join(MANIFEST_FILE);
        let bytes = io
            .read(&manifest_path)
            .map_err(|e| DbError::Io(manifest_path.clone(), e))?;
        let text = String::from_utf8(bytes)
            .map_err(|_| DbError::Manifest("manifest is not valid UTF-8".into()))?;
        let manifest = Manifest::parse(&text).map_err(DbError::Manifest)?;
        Ok(Database { dir, manifest, io })
    }

    /// The database directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The validated manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Number of volumes.
    pub fn num_volumes(&self) -> usize {
        self.manifest.volumes.len()
    }

    /// Database-wide residue total — the subject-side effective search
    /// space every volume prices e-values against.
    pub fn total_residues(&self) -> u64 {
        self.manifest.total_residues
    }

    /// One volume's manifest row.
    pub fn volume(&self, i: usize) -> &VolumeMeta {
        &self.manifest.volumes[i]
    }

    /// Wraps a typed cause into the volume's [`DbError`].
    fn volume_error(&self, volume: usize, path: PathBuf, cause: VolumeCause) -> DbError {
        DbError::Volume(VolumeError {
            volume,
            path,
            cause,
        })
    }

    /// Attaches volume `i`: re-reads its FASTA, loads its index under
    /// `mode` (mmap by default — zero-copy postings/offsets), and pairs
    /// them into a `PreparedBank` after the full identity check chain:
    ///
    /// * the FASTA's content hash must match the manifest row (a volume
    ///   edited after `makedb` is refused);
    /// * the index file's recorded bank hash must match the bank (the
    ///   `PreparedBank::from_index` check — so manifest, FASTA and index
    ///   must agree pairwise);
    /// * the index configuration must match the manifest's `w`/`stride`.
    ///
    /// Every failure is a [`DbError::Volume`] whose typed
    /// [`VolumeCause`] distinguishes transient I/O from durable
    /// corruption — the distinction the session's retry/quarantine
    /// policy and `verifydb` dispatch on.
    pub fn attach_volume(
        &self,
        i: usize,
        mode: AttachMode,
    ) -> Result<(PreparedBank<'static>, AttachedVolumeStats), DbError> {
        let meta = self.volume(i);
        let t0 = Stopwatch::start();
        let fasta_path = self.dir.join(&meta.fasta);
        let fasta_bytes = self
            .io
            .read(&fasta_path)
            .map_err(|e| self.volume_error(i, fasta_path.clone(), VolumeCause::Io(e)))?;
        let bank = oris_seqio::read_fasta(&fasta_bytes[..])
            .map_err(|e| self.volume_error(i, fasta_path.clone(), VolumeCause::Fasta(e)))?;
        let actual_hash = fnv1a(bank.data());
        if actual_hash != meta.bank_hash {
            return Err(self.volume_error(
                i,
                fasta_path.clone(),
                VolumeCause::HashMismatch {
                    expected: meta.bank_hash,
                    actual: actual_hash,
                },
            ));
        }
        if bank.num_residues() as u64 != meta.residues {
            return Err(self.volume_error(
                i,
                fasta_path.clone(),
                VolumeCause::Mismatch(format!(
                    "{} residues, manifest records {}",
                    bank.num_residues(),
                    meta.residues
                )),
            ));
        }
        let index_path = self.dir.join(&meta.index);
        let (index, imeta): (_, IndexMeta) = self
            .io
            .attach_index(&index_path, mode)
            .map_err(|e| self.volume_error(i, index_path.clone(), VolumeCause::Index(e)))?;
        if index.w() != self.manifest.w || index.stride() != self.manifest.stride {
            return Err(self.volume_error(
                i,
                index_path.clone(),
                VolumeCause::Mismatch(format!(
                    "index is w={} stride={}, manifest says w={} stride={}",
                    index.w(),
                    index.stride(),
                    self.manifest.w,
                    self.manifest.stride
                )),
            ));
        }
        // Index ↔ manifest: the index file's recorded bank hash must name
        // the same content the manifest row does. Combined with the
        // bank ↔ manifest check above this is transitively bank ↔ index,
        // so the attach below is told to skip its own bank re-hash — one
        // full-bank FNV pass per attach, not two (this is the hot path
        // under a bounded window, which re-attaches volumes per query).
        if imeta.bank_hash != 0 && imeta.bank_hash != meta.bank_hash {
            return Err(self.volume_error(
                i,
                index_path.clone(),
                VolumeCause::Mismatch(format!(
                    "index was built over content {:016x}, manifest records {:016x}",
                    imeta.bank_hash, meta.bank_hash
                )),
            ));
        }
        let mmap_backed = index.is_mmap_backed();
        let index_heap_bytes = index.heap_bytes();
        let attach_meta = IndexMeta {
            bank_hash: 0, // verified transitively above
            ..imeta
        };
        let prepared = PreparedBank::from_index_owned(bank, index, &attach_meta)
            .map_err(|e| self.volume_error(i, index_path.clone(), VolumeCause::Mismatch(e)))?;
        Ok((
            prepared,
            AttachedVolumeStats {
                attach_secs: t0.elapsed_secs(),
                index_heap_bytes,
                mmap_backed,
            },
        ))
    }
}
