//! Opening a database directory and attaching its volumes.

use std::path::{Path, PathBuf};
use std::time::Instant;

use oris_core::PreparedBank;
use oris_index::persist::fnv1a;
use oris_index::{AttachMode, IndexMeta};

use crate::manifest::{Manifest, VolumeMeta, MANIFEST_FILE};

/// Why a database could not be opened, attached or built.
#[derive(Debug)]
pub enum DbError {
    /// I/O failure on a named path.
    Io(PathBuf, std::io::Error),
    /// The manifest is missing, malformed or inconsistent.
    Manifest(String),
    /// A volume failed validation (bad index file, content mismatch,
    /// missing file).
    Volume(String),
    /// The search configuration does not match the database.
    Config(String),
    /// The caller's result sink failed (e.g. the output stream behind a
    /// `StreamWriter` hit a full disk) — an *output* problem, kept
    /// distinct from the database's own paths so the operator debugs the
    /// right filesystem.
    Sink(std::io::Error),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Io(path, e) => write!(f, "{}: {e}", path.display()),
            DbError::Manifest(msg) => write!(f, "database manifest: {msg}"),
            DbError::Volume(msg) => write!(f, "database volume: {msg}"),
            DbError::Config(msg) => write!(f, "database configuration: {msg}"),
            DbError::Sink(e) => write!(f, "writing results: {e}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Cost and provenance of one volume attach (step-1 work the database
/// session performs instead of an index build).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttachedVolumeStats {
    /// Seconds spent mapping/reading the index file and re-reading the
    /// volume FASTA (index build time is always 0 on this path).
    pub attach_secs: f64,
    /// Heap bytes of the attached index (near-zero for an mmap attach —
    /// the big sections stay in the page cache).
    pub index_heap_bytes: usize,
    /// Whether the index sections are mmap-backed.
    pub mmap_backed: bool,
}

/// An opened sharded subject database: a validated [`Manifest`] plus the
/// directory its volume files live in. Opening touches only the manifest
/// (and checks the volume files exist); volumes are attached lazily by
/// [`Database::attach_volume`] or a [`crate::DbSession`].
#[derive(Debug, Clone)]
pub struct Database {
    dir: PathBuf,
    manifest: Manifest,
}

impl Database {
    /// Opens the database at `dir`: parses and validates the manifest and
    /// verifies every volume's FASTA and index files exist.
    pub fn open(dir: impl AsRef<Path>) -> Result<Database, DbError> {
        let dir = dir.as_ref().to_path_buf();
        let manifest_path = dir.join(MANIFEST_FILE);
        let text = std::fs::read_to_string(&manifest_path)
            .map_err(|e| DbError::Io(manifest_path.clone(), e))?;
        let manifest = Manifest::parse(&text).map_err(DbError::Manifest)?;
        for v in &manifest.volumes {
            for name in [&v.fasta, &v.index] {
                let p = dir.join(name);
                if !p.is_file() {
                    return Err(DbError::Volume(format!(
                        "volume {} file {} is missing",
                        v.id,
                        p.display()
                    )));
                }
            }
        }
        Ok(Database { dir, manifest })
    }

    /// The database directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The validated manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Number of volumes.
    pub fn num_volumes(&self) -> usize {
        self.manifest.volumes.len()
    }

    /// Database-wide residue total — the subject-side effective search
    /// space every volume prices e-values against.
    pub fn total_residues(&self) -> u64 {
        self.manifest.total_residues
    }

    /// One volume's manifest row.
    pub fn volume(&self, i: usize) -> &VolumeMeta {
        &self.manifest.volumes[i]
    }

    /// Attaches volume `i`: re-reads its FASTA, loads its index under
    /// `mode` (mmap by default — zero-copy postings/offsets), and pairs
    /// them into a `PreparedBank` after the full identity check chain:
    ///
    /// * the FASTA's content hash must match the manifest row (a volume
    ///   edited after `makedb` is refused);
    /// * the index file's recorded bank hash must match the bank (the
    ///   `PreparedBank::from_index` check — so manifest, FASTA and index
    ///   must agree pairwise);
    /// * the index configuration must match the manifest's `w`/`stride`.
    pub fn attach_volume(
        &self,
        i: usize,
        mode: AttachMode,
    ) -> Result<(PreparedBank<'static>, AttachedVolumeStats), DbError> {
        let meta = self.volume(i);
        let t0 = Instant::now();
        let fasta_path = self.dir.join(&meta.fasta);
        let bank = oris_seqio::read_fasta_file(&fasta_path)
            .map_err(|e| DbError::Volume(format!("{}: {e}", fasta_path.display())))?;
        let actual_hash = fnv1a(bank.data());
        if actual_hash != meta.bank_hash {
            return Err(DbError::Volume(format!(
                "{}: content hash {actual_hash:016x} does not match the manifest \
                 ({:016x}) — volume rewritten after makedb?",
                fasta_path.display(),
                meta.bank_hash
            )));
        }
        if bank.num_residues() as u64 != meta.residues {
            return Err(DbError::Volume(format!(
                "{}: {} residues, manifest records {}",
                fasta_path.display(),
                bank.num_residues(),
                meta.residues
            )));
        }
        let index_path = self.dir.join(&meta.index);
        let (index, imeta): (_, IndexMeta) = oris_index::attach_index_file(&index_path, mode)
            .map_err(|e| DbError::Volume(format!("{}: {e}", index_path.display())))?;
        if index.w() != self.manifest.w || index.stride() != self.manifest.stride {
            return Err(DbError::Volume(format!(
                "{}: index is w={} stride={}, manifest says w={} stride={}",
                index_path.display(),
                index.w(),
                index.stride(),
                self.manifest.w,
                self.manifest.stride
            )));
        }
        // Index ↔ manifest: the index file's recorded bank hash must name
        // the same content the manifest row does. Combined with the
        // bank ↔ manifest check above this is transitively bank ↔ index,
        // so the attach below is told to skip its own bank re-hash — one
        // full-bank FNV pass per attach, not two (this is the hot path
        // under a bounded window, which re-attaches volumes per query).
        if imeta.bank_hash != 0 && imeta.bank_hash != meta.bank_hash {
            return Err(DbError::Volume(format!(
                "{}: index was built over content {:016x}, manifest records {:016x}",
                index_path.display(),
                imeta.bank_hash,
                meta.bank_hash
            )));
        }
        let mmap_backed = index.is_mmap_backed();
        let index_heap_bytes = index.heap_bytes();
        let attach_meta = IndexMeta {
            bank_hash: 0, // verified transitively above
            ..imeta
        };
        let prepared = PreparedBank::from_index_owned(bank, index, &attach_meta)
            .map_err(|e| DbError::Volume(format!("{}: {e}", index_path.display())))?;
        Ok((
            prepared,
            AttachedVolumeStats {
                attach_secs: t0.elapsed().as_secs_f64(),
                index_heap_bytes,
                mmap_backed,
            },
        ))
    }
}
