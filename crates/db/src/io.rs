//! The volume I/O seam: real filesystem reads, and a deterministic
//! fault injector that exercises every database error path from tests.
//!
//! Everything a [`crate::Database`] reads — the manifest, volume FASTAs,
//! volume index files — goes through a [`VolumeIo`] implementation.
//! Production uses [`RealIo`] (plain `std::fs` + the mmap attach path).
//! Tests use [`FaultyIo`], which wraps the real filesystem and applies
//! scripted [`FaultRule`]s: fail the Nth open/read of a chosen file with
//! a chosen `io::ErrorKind`, truncate the returned bytes, bit-flip a
//! chosen byte, report a file as missing, or delay the operation. Faults
//! are matched **deterministically** (by file name and a per-rule
//! occurrence counter, never randomness or global state), so a test that
//! injects "the second read of `vol00001.oidx` fails with `Interrupted`"
//! reproduces exactly — which is what lets the fault-injection suite
//! assert *which* [`crate::DbError`] variant each failure produces, and
//! that no error arm in the database layer is unreachable.
//!
//! Scope: reads only. `makedb`'s writes go straight to `std::fs` —
//! build-time failures are ordinary I/O errors on a directory the
//! operator owns; the fault model worth testing is the *serving* path,
//! where a long-lived session meets files that rot underneath it.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use oris_index::persist::read_index;
use oris_index::{AttachMode, BankIndex, IndexMeta, PersistError};

/// How a [`crate::Database`] reads its files. Implementations must be
/// `Send + Sync`: one database handle may serve many sessions.
pub trait VolumeIo: std::fmt::Debug + Send + Sync {
    /// Whether `path` exists as a regular file (the open-time existence
    /// check).
    fn is_file(&self, path: &Path) -> bool;

    /// Reads the entire file at `path` (manifest, volume FASTA).
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Loads the index file at `path` under `mode`.
    fn attach_index(
        &self,
        path: &Path,
        mode: AttachMode,
    ) -> Result<(BankIndex, IndexMeta), PersistError>;
}

/// The production implementation: plain filesystem reads and the real
/// heap/mmap index attach.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealIo;

impl VolumeIo for RealIo {
    fn is_file(&self, path: &Path) -> bool {
        path.is_file()
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn attach_index(
        &self,
        path: &Path,
        mode: AttachMode,
    ) -> Result<(BankIndex, IndexMeta), PersistError> {
        oris_index::attach_index_file(path, mode)
    }
}

/// One injectable fault.
#[derive(Debug, Clone)]
pub enum Fault {
    /// Fail the operation with an `io::Error` of this kind (message
    /// `"injected fault"`). On `is_file` this reports the file present —
    /// use [`Fault::Missing`] to fail the existence check.
    Error(io::ErrorKind),
    /// Report the file as absent: `is_file` returns `false`, reads fail
    /// with `NotFound`.
    Missing,
    /// Truncate the returned bytes to this length (a partially-written
    /// or cut-off file).
    Truncate(usize),
    /// XOR the byte at `offset` with `mask` (a flipped bit/byte on
    /// disk). Out-of-range offsets leave the bytes unchanged.
    FlipByte {
        /// Byte offset into the file.
        offset: usize,
        /// XOR mask applied to that byte (use a non-zero mask).
        mask: u8,
    },
    /// Sleep this long, then serve the real bytes (a slow device — the
    /// deadline tests' fault of choice).
    Delay(Duration),
}

/// One scripted rule: which file, which occurrences, which [`Fault`].
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// File name to match (the path's final component), or `None` to
    /// match every file.
    pub file: Option<String>,
    /// Matching operations passed through before the fault first fires
    /// (`0` = fire on the first matching operation — "fail the Nth read"
    /// is `skip: N - 1`).
    pub skip: u32,
    /// How many matching operations the fault applies to once firing
    /// (`u32::MAX` = every one from then on).
    pub times: u32,
    /// The fault to apply.
    pub fault: Fault,
}

impl FaultRule {
    /// A rule applying `fault` to every operation on `file`, forever.
    pub fn always(file: &str, fault: Fault) -> FaultRule {
        FaultRule {
            file: Some(file.to_string()),
            skip: 0,
            times: u32::MAX,
            fault,
        }
    }

    /// A rule applying `fault` to the first `times` operations on
    /// `file`, then passing through (a transient fault that clears).
    pub fn first(file: &str, times: u32, fault: Fault) -> FaultRule {
        FaultRule {
            file: Some(file.to_string()),
            skip: 0,
            times,
            fault,
        }
    }
}

/// Per-rule firing state.
#[derive(Debug)]
struct RuleState {
    rule: FaultRule,
    skipped: u32,
    fired: u32,
}

/// A deterministic fault-injecting [`VolumeIo`] wrapping the real
/// filesystem. See the [module docs](self).
#[derive(Debug, Default)]
pub struct FaultyIo {
    rules: Mutex<Vec<RuleState>>,
    ops: AtomicU32,
}

impl FaultyIo {
    /// An injector with no rules (behaves like [`RealIo`] until rules
    /// are [pushed](FaultyIo::push)).
    pub fn new() -> FaultyIo {
        FaultyIo::default()
    }

    /// An injector pre-loaded with `rules`.
    pub fn with_rules(rules: impl IntoIterator<Item = FaultRule>) -> FaultyIo {
        let io = FaultyIo::new();
        for r in rules {
            io.push(r);
        }
        io
    }

    /// Adds a rule. Rules are consulted in insertion order; the first
    /// whose file matches claims the operation (advancing its skip/fire
    /// counters), so at most one fault applies per operation.
    pub fn push(&self, rule: FaultRule) {
        self.rules.lock().unwrap().push(RuleState {
            rule,
            skipped: 0,
            fired: 0,
        });
    }

    /// Total operations (`is_file`, `read`, `attach_index`) observed —
    /// lets tests assert that a quarantined volume is *not* re-probed.
    pub fn operations(&self) -> u32 {
        self.ops.load(Ordering::Relaxed)
    }

    /// The fault (if any) claiming this operation on `path`. Only rules
    /// whose fault passes `relevant` are consulted (and have their
    /// counters advanced): an existence check must not consume a
    /// scripted *read* fault, or "fail the first read" rules would be
    /// silently eaten by `Database::open`'s `is_file` probe.
    fn fault_for(&self, path: &Path, relevant: impl Fn(&Fault) -> bool) -> Option<Fault> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        let name = path.file_name().and_then(|n| n.to_str())?.to_string();
        let mut rules = self.rules.lock().unwrap();
        for st in rules.iter_mut() {
            let matches =
                st.rule.file.as_deref().is_none_or(|f| f == name) && relevant(&st.rule.fault);
            if !matches {
                continue;
            }
            if st.skipped < st.rule.skip {
                st.skipped += 1;
                return None; // claimed, but passing through this time
            }
            if st.fired < st.rule.times {
                st.fired += 1;
                return Some(st.rule.fault.clone());
            }
            // Exhausted: fall through to later rules.
        }
        None
    }

    fn injected(kind: io::ErrorKind) -> io::Error {
        io::Error::new(kind, "injected fault")
    }

    /// Applies `fault` to freshly-read `bytes` (for faults that mutate
    /// rather than fail).
    fn mutate(fault: &Fault, bytes: &mut Vec<u8>) {
        match fault {
            Fault::Truncate(len) => bytes.truncate(*len),
            Fault::FlipByte { offset, mask } => {
                if let Some(b) = bytes.get_mut(*offset) {
                    *b ^= mask;
                }
            }
            Fault::Delay(d) => std::thread::sleep(*d),
            Fault::Error(_) | Fault::Missing => unreachable!("handled before reading"),
        }
    }

    fn read_with_faults(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.fault_for(path, |_| true) {
            Some(Fault::Error(kind)) => Err(Self::injected(kind)),
            Some(Fault::Missing) => Err(Self::injected(io::ErrorKind::NotFound)),
            Some(fault) => {
                let mut bytes = std::fs::read(path)?;
                Self::mutate(&fault, &mut bytes);
                Ok(bytes)
            }
            None => std::fs::read(path),
        }
    }
}

impl VolumeIo for FaultyIo {
    fn is_file(&self, path: &Path) -> bool {
        // Error/Truncate/FlipByte faults strike the *read*; the file
        // still exists, and those rules are neither consulted nor
        // consumed here.
        match self.fault_for(path, |f| matches!(f, Fault::Missing | Fault::Delay(_))) {
            Some(Fault::Missing) => false,
            Some(Fault::Delay(d)) => {
                std::thread::sleep(d);
                path.is_file()
            }
            _ => path.is_file(),
        }
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.read_with_faults(path)
    }

    /// Index attach under injection: the file is read through the fault
    /// plan and parsed by the streaming loader, so a scripted fault
    /// drives exactly the [`PersistError`] the real loaders would return
    /// for those bytes (both loaders reject the same corruptions —
    /// equivalence-tested in `oris-index`). `mode` is accepted for
    /// signature parity but the injector always parses from its own
    /// buffer; mmap-specific behaviour is covered by the corruption
    /// fuzz tests against the real attach path.
    fn attach_index(
        &self,
        path: &Path,
        _mode: AttachMode,
    ) -> Result<(BankIndex, IndexMeta), PersistError> {
        let bytes = self.read_with_faults(path).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                PersistError::Io(e) // keep injected EOF an I/O failure, not "truncated"
            } else {
                PersistError::from(e)
            }
        })?;
        let mut slice: &[u8] = &bytes;
        let parsed = read_index(&mut slice)?;
        if !slice.is_empty() {
            return Err(PersistError::Corrupt(format!(
                "{} trailing bytes after the checksum",
                slice.len()
            )));
        }
        Ok(parsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn tmp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("oris_db_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{}_{name}", std::process::id()));
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    #[test]
    fn real_io_reads_files() {
        let p = tmp("real", b"hello");
        let io = RealIo;
        assert!(io.is_file(&p));
        assert_eq!(io.read(&p).unwrap(), b"hello");
        assert!(!io.is_file(&p.with_extension("absent")));
    }

    #[test]
    fn nth_read_fails_deterministically() {
        let p = tmp("nth", b"data");
        let name = p.file_name().unwrap().to_str().unwrap();
        let io = FaultyIo::with_rules([FaultRule {
            file: Some(name.into()),
            skip: 1,
            times: 1,
            fault: Fault::Error(io::ErrorKind::Interrupted),
        }]);
        assert_eq!(io.read(&p).unwrap(), b"data"); // 1st passes
        let err = io.read(&p).unwrap_err(); // 2nd fails
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert_eq!(io.read(&p).unwrap(), b"data"); // 3rd passes again
    }

    #[test]
    fn truncate_and_flip_mutate_bytes() {
        let p = tmp("mutate", b"abcdef");
        let name = p.file_name().unwrap().to_str().unwrap().to_string();
        let io = FaultyIo::with_rules([FaultRule::first(&name, 1, Fault::Truncate(3))]);
        assert_eq!(io.read(&p).unwrap(), b"abc");
        io.push(FaultRule::first(
            &name,
            1,
            Fault::FlipByte {
                offset: 0,
                mask: 0x01,
            },
        ));
        assert_eq!(io.read(&p).unwrap(), b"`bcdef"); // 'a' ^ 0x01 = '`'
        assert_eq!(io.read(&p).unwrap(), b"abcdef"); // exhausted
    }

    #[test]
    fn missing_hides_the_file() {
        let p = tmp("missing", b"x");
        let name = p.file_name().unwrap().to_str().unwrap().to_string();
        let io = FaultyIo::with_rules([FaultRule::always(&name, Fault::Missing)]);
        assert!(!io.is_file(&p));
        assert_eq!(io.read(&p).unwrap_err().kind(), io::ErrorKind::NotFound);
        // Other files are untouched.
        let other = tmp("missing_other", b"y");
        assert!(io.is_file(&other));
    }

    #[test]
    fn rules_match_by_file_name_only() {
        let p = tmp("scoped", b"x");
        let io = FaultyIo::with_rules([FaultRule::always(
            "some_other_file",
            Fault::Error(io::ErrorKind::Other),
        )]);
        assert_eq!(io.read(&p).unwrap(), b"x");
        assert!(io.operations() >= 1);
    }
}
