//! The volume-level result cache: repeated queries cost ~0 volume
//! searches.
//!
//! A serving deployment sees the same queries over and over (heavy
//! traffic is repetitive traffic), and a volume's records for a query are
//! a pure function of three things: the query bank's content, the volume
//! bank's content, and the search configuration. [`ResultCache`] memoizes
//! exactly that function — each entry holds one `(query, volume)` pair's
//! staged records plus its [`PipelineStats`], keyed by
//! [`CacheKey`]'s three content fingerprints — under a **bounded-memory
//! LRU**: the same discipline as `TopKSink`'s bounded heap, applied at
//! the cache level (memory never grows with query-history length; the
//! worst entry to keep is the least recently used one).
//!
//! Correctness contract (enforced by `DbSession`, tested in
//! `tests/db_equivalence.rs` and `crates/db/tests/serving.rs`):
//!
//! * A hit replays **byte-identical** records: entries store the exact
//!   per-volume record vector a fresh search would stage, and the sink's
//!   boundary sort under `M8Record::total_order` makes arrival order
//!   irrelevant — so cached and cold output bytes are equal.
//! * Only a *completed* volume search populates the cache. A
//!   deadline-aborted search inserts nothing (its partial records are
//!   discarded with the staging buffer).
//! * A quarantined volume is never served from the cache: the session
//!   checks quarantine before probing, and [`ResultCache::invalidate_volume`]
//!   drops a volume's entries the moment it is quarantined.
//! * Staleness matches the attach cache's contract: a cached entry (like
//!   a cached attached volume) assumes the volume's files are not swapped
//!   out from under an open session. The volume fingerprint is the
//!   manifest's content hash, revalidated on every real attach.
//!
//! Determinism note: the map is a `BTreeMap` (ordered, deterministic
//! iteration) and the LRU order is an explicit queue — no hash-iteration
//! order can reach a result path, keeping the `oris-lint` det-hash rule
//! trivially satisfied.

use std::collections::BTreeMap;

use oris_core::{OrisConfig, PipelineStats};
use oris_eval::M8Record;
use oris_seqio::Bank;

/// Cache key: the three content fingerprints that fully determine a
/// volume's records for a query, plus the volume's id (fingerprints are
/// content hashes; the id pins the entry to its manifest row so
/// [`ResultCache::invalidate_volume`] can drop a quarantined volume's
/// entries without hashing anything).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    /// [`bank_fingerprint`] of the query bank (data, names, boundaries).
    pub query: u64,
    /// Volume id (dense manifest ordinal).
    pub volume: usize,
    /// The volume's content hash (the manifest's `bank_hash`, verified
    /// against the FASTA and the index file on every real attach).
    pub volume_hash: u64,
    /// [`config_fingerprint`] of the session's effective configuration.
    pub config: u64,
}

/// One cached `(query, volume)` result: the records a fresh search of
/// that volume would stage, plus its pipeline report.
#[derive(Debug, Clone)]
pub struct CachedVolume {
    /// Per-volume records in staging (arrival) order.
    pub records: Vec<M8Record>,
    /// The volume search's pipeline report (replayed on a hit so merged
    /// per-query stats keep counting cached volumes' work).
    pub stats: PipelineStats,
    /// Approximate heap bytes this entry charges against the budget.
    bytes: usize,
}

/// Session-lifetime cache counters (monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Probes that found a usable entry.
    pub hits: u64,
    /// Probes that found nothing (and led to a real volume search).
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted by the memory bound (LRU order).
    pub evictions: u64,
    /// Entries dropped by [`ResultCache::invalidate_volume`].
    pub invalidations: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Approximate bytes currently charged.
    pub bytes: usize,
}

/// Bounded-memory LRU over per-volume query results. See the
/// [module docs](self) for the correctness contract.
#[derive(Debug, Default)]
pub struct ResultCache {
    /// Memory budget in bytes (entry payloads, approximate).
    capacity: usize,
    /// Keyed entries. `BTreeMap`, not `HashMap`: deterministic iteration
    /// order, so nothing about this structure can leak nondeterminism
    /// into a result path (and the det-hash lint stays clean).
    entries: BTreeMap<CacheKey, CachedVolume>,
    /// LRU order, least recently used first. Touch = move to back. The
    /// queue is small (one element per resident entry), so the linear
    /// remove on touch is cheaper than a second ordered index.
    order: Vec<CacheKey>,
    counters: CacheCounters,
}

impl ResultCache {
    /// A cache charging at most `capacity_bytes` of entry payload.
    pub fn new(capacity_bytes: usize) -> ResultCache {
        ResultCache {
            capacity: capacity_bytes,
            ..ResultCache::default()
        }
    }

    /// Looks up `key`, counting a hit or miss and refreshing the entry's
    /// LRU position on a hit.
    pub fn lookup(&mut self, key: &CacheKey) -> Option<&CachedVolume> {
        match self.entries.get(key) {
            Some(_) => {
                self.counters.hits += 1;
                self.touch(key);
                self.entries.get(key)
            }
            None => {
                self.counters.misses += 1;
                None
            }
        }
    }

    /// Inserts a completed volume search's records and stats, evicting
    /// least-recently-used entries until the budget holds. An entry
    /// larger than the whole budget is not stored (matching `TopKSink`'s
    /// rule that the bound is never exceeded, not even transiently).
    pub fn insert(&mut self, key: CacheKey, records: Vec<M8Record>, stats: PipelineStats) {
        let bytes = entry_bytes(&records);
        if bytes > self.capacity {
            return;
        }
        if let Some(old) = self.entries.remove(&key) {
            // Re-insert of a live key (e.g. after invalidate+requery
            // races in caller logic): replace, don't double-charge.
            self.counters.bytes -= old.bytes;
            self.order.retain(|k| k != &key);
        }
        while self.counters.bytes + bytes > self.capacity && !self.order.is_empty() {
            let victim = self.order.remove(0);
            if let Some(e) = self.entries.remove(&victim) {
                self.counters.bytes -= e.bytes;
                self.counters.evictions += 1;
            }
        }
        self.counters.bytes += bytes;
        self.counters.insertions += 1;
        self.order.push(key);
        self.entries.insert(
            key,
            CachedVolume {
                records,
                stats,
                bytes,
            },
        );
        self.counters.entries = self.entries.len();
    }

    /// Drops every entry belonging to volume `v` — called the moment a
    /// volume is quarantined, so a volume that failed is never served
    /// from the cache afterwards.
    pub fn invalidate_volume(&mut self, v: usize) {
        let victims: Vec<CacheKey> = self
            .order
            .iter()
            .filter(|k| k.volume == v)
            .copied()
            .collect();
        for key in victims {
            if let Some(e) = self.entries.remove(&key) {
                self.counters.bytes -= e.bytes;
                self.counters.invalidations += 1;
            }
        }
        self.order.retain(|k| k.volume != v);
        self.counters.entries = self.entries.len();
    }

    /// Session-lifetime counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            entries: self.entries.len(),
            ..self.counters
        }
    }

    /// Moves `key` to the back of the LRU queue.
    fn touch(&mut self, key: &CacheKey) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            let k = self.order.remove(pos);
            self.order.push(k);
        }
    }
}

/// Approximate heap bytes of one entry's record payload.
fn entry_bytes(records: &[M8Record]) -> usize {
    let strings: usize = records.iter().map(|r| r.qid.len() + r.sid.len()).sum();
    std::mem::size_of_val(records) + strings + std::mem::size_of::<CachedVolume>()
}

/// Incremental FNV-1a (the same constants as
/// `oris_index::persist::fnv1a`, in fold form so multi-part fingerprints
/// need no intermediate buffer).
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Fnv {
        Fnv(Self::OFFSET)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.bytes(&v.to_le_bytes());
    }
}

/// Content fingerprint of a bank: packed code data **plus** record names
/// and boundaries. The manifest's `bank_hash` covers the data alone; a
/// cache key must also distinguish banks whose sequences agree but whose
/// names differ, because record names appear verbatim in the output
/// (`qid`/`sid` columns).
pub fn bank_fingerprint(bank: &Bank) -> u64 {
    let mut h = Fnv::new();
    h.bytes(bank.data());
    h.u64(bank.num_sequences() as u64);
    for r in bank.records() {
        h.bytes(r.name.as_bytes());
        // Separator + boundaries: names are free text, so frame them.
        h.bytes(&[0xFF]);
        h.u64(r.start as u64);
        h.u64(r.len as u64);
    }
    h.0
}

/// Fingerprint of every configuration field that can change what a
/// search emits. Excluded on purpose: `threads` and `index_backend`
/// (byte-identical by the workspace's determinism contract — pinned by
/// the `db_equivalence` proptests) and the deadline (a completed search
/// under a deadline is byte-identical to one without).
pub fn config_fingerprint(cfg: &OrisConfig) -> u64 {
    let mut h = Fnv::new();
    h.u64(cfg.w as u64);
    h.i64(i64::from(cfg.xdrop_ungapped));
    h.i64(i64::from(cfg.xdrop_gapped));
    h.i64(i64::from(cfg.min_hsp_score));
    h.u64(cfg.evalue_threshold.to_bits());
    h.i64(i64::from(cfg.scheme.matsch));
    h.i64(i64::from(cfg.scheme.mismatch));
    h.i64(i64::from(cfg.scheme.gap_open));
    h.i64(i64::from(cfg.scheme.gap_extend));
    h.u64(u64::from(cfg.filter.code()));
    h.u64(u64::from(cfg.asymmetric));
    h.u64(u64::from(cfg.both_strands));
    h.u64(cfg.max_gapped_span as u64);
    match cfg.subject_space {
        oris_eval::SubjectSpace::PerSequence => h.u64(0),
        oris_eval::SubjectSpace::Database(n) => {
            h.u64(1);
            h.u64(n);
        }
    }
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use oris_seqio::BankBuilder;

    fn rec(sid: &str, evalue: f64) -> M8Record {
        M8Record {
            qid: "q".into(),
            sid: sid.into(),
            pident: 100.0,
            length: 20,
            mismatch: 0,
            gapopen: 0,
            qstart: 1,
            qend: 20,
            sstart: 1,
            send: 20,
            evalue,
            bitscore: 40.0,
        }
    }

    fn key(q: u64, v: usize) -> CacheKey {
        CacheKey {
            query: q,
            volume: v,
            volume_hash: 0xabc + v as u64,
            config: 7,
        }
    }

    #[test]
    fn hit_replays_exact_records_and_counts() {
        let mut c = ResultCache::new(1 << 20);
        let records = vec![rec("s1", 1e-5), rec("s0", 1e-9)];
        c.insert(key(1, 0), records.clone(), PipelineStats::default());
        assert!(c.lookup(&key(2, 0)).is_none(), "different query must miss");
        let hit = c.lookup(&key(1, 0)).expect("hit");
        assert_eq!(hit.records, records);
        let n = c.counters();
        assert_eq!((n.hits, n.misses, n.insertions), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let one = entry_bytes(&[rec("s", 1.0)]);
        // Room for exactly two single-record entries.
        let mut c = ResultCache::new(2 * one);
        c.insert(key(1, 0), vec![rec("a", 1.0)], PipelineStats::default());
        c.insert(key(2, 0), vec![rec("b", 1.0)], PipelineStats::default());
        // Touch entry 1 so entry 2 becomes the LRU victim.
        assert!(c.lookup(&key(1, 0)).is_some());
        c.insert(key(3, 0), vec![rec("c", 1.0)], PipelineStats::default());
        assert!(c.lookup(&key(2, 0)).is_none(), "LRU entry evicted");
        assert!(c.lookup(&key(1, 0)).is_some(), "touched entry survives");
        assert!(c.lookup(&key(3, 0)).is_some());
        let n = c.counters();
        assert_eq!(n.evictions, 1);
        assert_eq!(n.entries, 2);
        assert!(n.bytes <= 2 * one);
    }

    #[test]
    fn oversized_entry_is_never_stored() {
        let mut c = ResultCache::new(8);
        c.insert(key(1, 0), vec![rec("s", 1.0)], PipelineStats::default());
        assert_eq!(c.counters().entries, 0);
        assert_eq!(c.counters().bytes, 0);
        assert!(c.lookup(&key(1, 0)).is_none());
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut c = ResultCache::new(0);
        c.insert(key(1, 0), Vec::new(), PipelineStats::default());
        assert_eq!(c.counters().entries, 0);
    }

    #[test]
    fn invalidate_volume_drops_only_that_volume() {
        let mut c = ResultCache::new(1 << 20);
        c.insert(key(1, 0), vec![rec("a", 1.0)], PipelineStats::default());
        c.insert(key(1, 1), vec![rec("b", 1.0)], PipelineStats::default());
        c.insert(key(2, 1), vec![rec("c", 1.0)], PipelineStats::default());
        c.invalidate_volume(1);
        assert!(c.lookup(&key(1, 1)).is_none());
        assert!(c.lookup(&key(2, 1)).is_none());
        assert!(c.lookup(&key(1, 0)).is_some());
        let n = c.counters();
        assert_eq!(n.invalidations, 2);
        assert_eq!(n.entries, 1);
    }

    #[test]
    fn reinserting_a_live_key_replaces_without_double_charging() {
        let mut c = ResultCache::new(1 << 20);
        c.insert(key(1, 0), vec![rec("a", 1.0)], PipelineStats::default());
        let before = c.counters().bytes;
        c.insert(key(1, 0), vec![rec("b", 1.0)], PipelineStats::default());
        assert_eq!(c.counters().bytes, before);
        assert_eq!(c.counters().entries, 1);
        assert_eq!(c.lookup(&key(1, 0)).unwrap().records[0].sid, "b");
    }

    #[test]
    fn bank_fingerprint_sees_names_not_just_data() {
        let mk = |name: &str| {
            let mut b = BankBuilder::new();
            b.push_str(name, "ACGTACGTACGT").unwrap();
            b.finish()
        };
        let a = mk("s0");
        let b = mk("renamed");
        assert_eq!(a.data(), b.data(), "same packed data by construction");
        assert_ne!(bank_fingerprint(&a), bank_fingerprint(&b));
        assert_eq!(bank_fingerprint(&a), bank_fingerprint(&mk("s0")));
    }

    #[test]
    fn config_fingerprint_tracks_output_affecting_fields() {
        let base = OrisConfig::small(7);
        let fp = config_fingerprint(&base);
        assert_eq!(fp, config_fingerprint(&base.clone()));
        for (name, cfg) in [
            ("w", OrisConfig::small(6)),
            (
                "evalue",
                OrisConfig {
                    evalue_threshold: 1.0,
                    ..base
                },
            ),
            (
                "strands",
                OrisConfig {
                    both_strands: true,
                    ..base
                },
            ),
            (
                "space",
                OrisConfig {
                    subject_space: oris_eval::SubjectSpace::Database(1234),
                    ..base
                },
            ),
        ] {
            assert_ne!(fp, config_fingerprint(&cfg), "{name} must change the key");
        }
        // Thread count is invisible in output, so it must not split the key.
        let threaded = OrisConfig {
            threads: Some(4),
            ..base
        };
        assert_eq!(fp, config_fingerprint(&threaded));
    }
}
