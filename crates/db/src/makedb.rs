//! The `makedb` step: shard FASTA input into size-bounded volumes.

use std::path::Path;

use oris_core::{FilterKind, OrisConfig, PreparedBank};
use oris_index::persist::fnv1a;
use oris_index::{IndexConfig, IndexMeta};
use oris_seqio::{Bank, BankBuilder};

use crate::database::DbError;
use crate::manifest::{Manifest, VolumeMeta, MANIFEST_FILE};

/// Options for [`make_db`].
#[derive(Debug, Clone, Copy)]
pub struct MakeDbOptions {
    /// Residue budget per volume: a volume is closed once adding the next
    /// sequence would exceed this (a single sequence longer than the
    /// budget still gets a volume of its own — sequences are never
    /// split).
    pub volume_residues: usize,
    /// Low-complexity filter the volume indexes are prepared under.
    pub filter: FilterKind,
    /// Index configuration of every volume (the *subject-side*
    /// configuration — stride 2 for an asymmetric database).
    pub index_config: IndexConfig,
}

impl MakeDbOptions {
    /// Options matching a search configuration: the database is built
    /// exactly as `scoris-n` would prepare its subject bank under `cfg`,
    /// so a [`crate::DbSession`] under the same `cfg` attaches cleanly.
    pub fn new(cfg: &OrisConfig, volume_residues: usize) -> MakeDbOptions {
        MakeDbOptions {
            volume_residues: volume_residues.max(1),
            filter: cfg.filter,
            index_config: cfg.subject_index_config(),
        }
    }
}

/// Splits the sequences of `sources` (in order) into size-bounded
/// volumes under `out_dir`: each volume is written as `vol<i>.fa` plus
/// its persisted index `vol<i>.oidx`, and the manifest —
/// [`MANIFEST_FILE`] — records per-volume residue counts, sequence
/// counts and content hashes, the index configuration, and the
/// database-wide residue total the search layer prices e-values against.
///
/// `out_dir` is created if missing; an existing manifest there is
/// refused (a database is built once, not accreted — delete the
/// directory to rebuild). Returns the written manifest.
pub fn make_db(
    sources: impl IntoIterator<Item = Bank>,
    out_dir: impl AsRef<Path>,
    opts: &MakeDbOptions,
) -> Result<Manifest, DbError> {
    let out_dir = out_dir.as_ref();
    std::fs::create_dir_all(out_dir).map_err(|e| DbError::Io(out_dir.to_path_buf(), e))?;
    let manifest_path = out_dir.join(MANIFEST_FILE);
    if manifest_path.exists() {
        return Err(DbError::Manifest(format!(
            "{} already exists — delete the directory to rebuild",
            manifest_path.display()
        )));
    }

    let mut volumes: Vec<VolumeMeta> = Vec::new();
    let mut current = BankBuilder::new();
    let mut current_seqs = 0u64;

    let flush = |builder: &mut BankBuilder,
                 seqs: &mut u64,
                 volumes: &mut Vec<VolumeMeta>|
     -> Result<(), DbError> {
        if *seqs == 0 {
            return Ok(());
        }
        let bank = std::mem::replace(builder, BankBuilder::new()).finish();
        let id = volumes.len();
        let fasta = format!("vol{id:05}.fa");
        let index = format!("vol{id:05}.oidx");
        let fasta_path = out_dir.join(&fasta);
        oris_seqio::write_fasta_file(&bank, &fasta_path).map_err(|e| {
            DbError::Volume(crate::error::VolumeError {
                volume: id,
                path: fasta_path.clone(),
                cause: crate::error::VolumeCause::Fasta(e),
            })
        })?;
        let prepared = PreparedBank::prepare(&bank, opts.filter, opts.index_config);
        let imeta = IndexMeta {
            masked_fraction: prepared.stats().masked_fraction,
            filter_code: opts.filter.code(),
            bank_hash: fnv1a(bank.data()),
        };
        let index_path = out_dir.join(&index);
        oris_index::write_index_file(&index_path, prepared.index(), &imeta)
            .map_err(|e| DbError::Io(index_path.clone(), e))?;
        volumes.push(VolumeMeta {
            id,
            residues: bank.num_residues() as u64,
            sequences: *seqs,
            bank_hash: imeta.bank_hash,
            fasta,
            index,
        });
        *seqs = 0;
        Ok(())
    };

    for bank in sources {
        for i in 0..bank.num_sequences() {
            let rec = bank.record(i);
            // Close the current volume when this sequence would overflow
            // it. A sequence longer than the whole budget still lands in
            // a (fresh) volume of its own: sequences are never split,
            // because extensions cannot cross sequence boundaries and a
            // split would change results.
            if current_seqs > 0 && current.residues() + rec.len > opts.volume_residues {
                flush(&mut current, &mut current_seqs, &mut volumes)?;
            }
            current.push_codes(&rec.name, bank.sequence(i));
            current_seqs += 1;
        }
    }
    flush(&mut current, &mut current_seqs, &mut volumes)?;

    if volumes.is_empty() {
        return Err(DbError::Manifest(
            "no sequences in the input — a database needs at least one".into(),
        ));
    }
    let manifest = Manifest {
        w: opts.index_config.w,
        stride: opts.index_config.stride,
        filter_code: opts.filter.code(),
        total_residues: volumes.iter().map(|v| v.residues).sum(),
        volumes,
    };
    // The manifest is written last, so a crashed build leaves a directory
    // `Database::open` refuses (no manifest) instead of a plausible but
    // incomplete database.
    std::fs::write(&manifest_path, manifest.to_text())
        .map_err(|e| DbError::Io(manifest_path, e))?;
    Ok(manifest)
}
