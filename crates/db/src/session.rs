//! Cross-volume search: one query, every volume, one result stream —
//! with an explicit failure model.
//!
//! A long-lived serving session meets three failure classes the happy
//! path never sees: volumes that rot underneath it (truncated index,
//! flipped bit, deleted file), transient I/O hiccups that clear on
//! retry, and adversarial queries whose step-2 cost is effectively
//! unbounded. [`DbSession`] makes all three first-class:
//!
//! * [`OnVolumeError`] — fail the query (default) or **quarantine** the
//!   bad volume for the session and complete over the survivors, after
//!   a bounded retry with exponential backoff for transient faults.
//! * [`SearchReport`] — per-query accounting of volumes searched,
//!   skipped and retried plus the residue coverage fraction, so a
//!   degraded result is explicitly labeled rather than silently partial.
//! * [`DbOptions::deadline`] / [`DbSession::run_query_deadline`] — a
//!   cooperative per-query budget checked at volume and step-2
//!   partition boundaries; expiry returns a clean
//!   [`DbError::DeadlineExceeded`] with the caller's sink untouched and
//!   the session ready for the next query.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use oris_core::{
    CollectSink, Deadline, DeadlineExceeded, OrisConfig, OrisResult, PipelineStats, PreparedBank,
    RecordSink, Session,
};
use oris_eval::{M8Record, SubjectSpace};
use oris_index::AttachMode;
use oris_obs::{names, Field, Obs};
use oris_seqio::Bank;

use crate::cache::{self, CacheCounters, CacheKey, ResultCache};
use crate::database::{Database, DbError};

/// One volume's staged search output: its records (arrival order, the
/// boundary sort happens at `end_query`) and the pipeline stats of the
/// search that produced them. `None` = nothing staged for that volume
/// (quarantined, cache-hit, not yet searched, or streamed directly).
type StagedResult = Option<(Vec<M8Record>, PipelineStats)>;

/// What a [`DbSession`] does when a volume fails to attach.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnVolumeError {
    /// Fail the query with the volume's [`DbError`] (the default — a
    /// batch pipeline wants loud, atomic failures).
    #[default]
    Fail,
    /// Retry transient faults (bounded, with exponential backoff), then
    /// quarantine the volume **for the session** and complete the query
    /// over the surviving volumes, recording the skip in the query's
    /// [`SearchReport`]. A serving deployment prefers a labeled partial
    /// answer over no answer.
    SkipAndReport,
}

/// Options for a [`DbSession`].
#[derive(Debug, Clone, Copy)]
pub struct DbOptions {
    /// How volume indexes are brought into memory ([`AttachMode::Mmap`]
    /// by default — postings/offsets referenced zero-copy from the file).
    pub attach: AttachMode,
    /// Maximum volumes held attached at once. `0` (the default) keeps
    /// every volume attached after its first use — cheap under mmap,
    /// where an attached volume's heap cost is its bank plus bit-set, not
    /// its postings. A small window (e.g. 1) re-attaches volumes per
    /// query and bounds resident memory to one volume's working set.
    pub window: usize,
    /// Volume-failure policy (see [`OnVolumeError`]).
    pub on_volume_error: OnVolumeError,
    /// Under [`OnVolumeError::SkipAndReport`], how many times a
    /// *transient* attach failure ([`DbError::is_transient`]) is retried
    /// before the volume is quarantined. Durable corruption is never
    /// retried.
    pub retries: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub retry_backoff: Duration,
    /// Per-query deadline. `None` (the default) runs unguarded with
    /// zero overhead; `Some(budget)` arms a fresh [`Deadline`] for each
    /// query (see [`DbSession::run_query_deadline`] for the guarantees).
    pub deadline: Option<Duration>,
    /// Worker threads fanning one query's volume searches out in
    /// parallel. `1` (the default, and any `0`) is the sequential walk;
    /// `N > 1` spawns `min(N, volumes)` scoped workers that pull volume
    /// ids from a shared cursor, stage records per volume, and merge in
    /// ascending volume order — output bytes are identical to the
    /// sequential walk for any value (see the crate docs' concurrency
    /// contract). Requires an unbounded [`DbOptions::window`]: parallel
    /// search needs every volume resident at once, which is exactly what
    /// a bounded window promises not to do ([`DbSession::new`] rejects
    /// the combination).
    pub volume_workers: usize,
    /// Memory budget for the volume-level [`ResultCache`]. `0` (the
    /// default) disables caching; `N > 0` memoizes completed per-volume
    /// searches under `(query hash, volume hash, config fingerprint)` in
    /// an LRU bounded to `N` bytes of record payload, so a repeated
    /// query is served without re-searching (or re-attaching) its
    /// cache-hit volumes.
    pub result_cache_bytes: usize,
}

impl Default for DbOptions {
    fn default() -> DbOptions {
        DbOptions {
            attach: AttachMode::Mmap,
            window: 0,
            on_volume_error: OnVolumeError::Fail,
            retries: 2,
            retry_backoff: Duration::from_millis(10),
            deadline: None,
            volume_workers: 1,
            result_cache_bytes: 0,
        }
    }
}

/// Per-volume step-1 cost attribution for a database session: what was
/// paid to make each volume searchable, kept separate from the per-query
/// pipeline reports exactly like `Session`'s subject-vs-query split.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VolumeCost {
    /// Times this volume was attached (more than 1 only when the window
    /// evicted it between queries).
    pub attaches: u32,
    /// Seconds spent attaching (FASTA re-read + index map/read), summed
    /// over attaches.
    pub attach_secs: f64,
    /// Seconds spent building minus-strand indexes (only non-zero for
    /// `both_strands` configurations — an index file stores one strand).
    pub strand_build_secs: f64,
    /// Heap bytes of the most recent attach (bank + index; near the bank
    /// size alone for an mmap attach).
    pub index_heap_bytes: usize,
    /// Whether the most recent attach was mmap-backed.
    pub mmap_backed: bool,
    /// Failed attach attempts retried on this volume (transient faults
    /// under [`OnVolumeError::SkipAndReport`]).
    pub retries: u32,
}

/// Per-query account of which volumes a search actually covered — the
/// label that keeps a degraded result honest.
///
/// With no faults, `searched` lists every volume and
/// [`SearchReport::coverage`] is `1.0`. Under
/// [`OnVolumeError::SkipAndReport`] with quarantined volumes, `skipped`
/// names them and the coverage fraction prices the loss in residues —
/// the quantity e-values are computed over (which are **still** priced
/// against the full database total: a degraded search under-reports
/// hits, it never inflates significance).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchReport {
    /// Total volumes in the database.
    pub volumes_total: usize,
    /// Volumes searched for this query, in scan order.
    pub searched: Vec<usize>,
    /// Volumes skipped because they are quarantined (failed this query
    /// or a previous one this session).
    pub skipped: Vec<usize>,
    /// Failed attach attempts retried during this query (transient
    /// faults only; quarantined volumes are not re-probed).
    pub retries: u32,
    /// Residues actually searched (sum over `searched`).
    pub residues_searched: u64,
    /// Database-wide residue total (the manifest's).
    pub residues_total: u64,
    /// Volumes served from the result cache (a subset of `searched`:
    /// a hit covers the volume exactly as a fresh search would).
    pub cache_hits: Vec<usize>,
}

impl SearchReport {
    /// Fraction of the database's residues this query searched
    /// (`1.0` = complete).
    pub fn coverage(&self) -> f64 {
        if self.residues_total == 0 {
            1.0
        } else {
            self.residues_searched as f64 / self.residues_total as f64
        }
    }

    /// Whether every volume was searched.
    pub fn is_complete(&self) -> bool {
        self.skipped.is_empty()
    }
}

/// Report of one [`DbSession::run_batch`]: per-query pipeline reports (in
/// batch order) plus the volume attach costs paid so far — the
/// database-session analogue of `oris_core::BatchStats`, with volume
/// attaches playing the subject-build role (attributed once per attach,
/// never folded into per-query reports).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DbBatchStats {
    /// Per-query merged reports (each sums that query's runs across all
    /// volumes; `index_builds` counts exactly the query's own build).
    pub per_query: Vec<PipelineStats>,
    /// Per-query coverage reports (parallel to `per_query`).
    pub reports: Vec<SearchReport>,
    /// Per-volume attach costs at batch end.
    pub volumes: Vec<VolumeCost>,
}

impl DbBatchStats {
    /// Number of queries run.
    pub fn queries(&self) -> usize {
        self.per_query.len()
    }

    /// Sum of the per-query reports.
    pub fn query_totals(&self) -> PipelineStats {
        self.per_query
            .iter()
            .fold(PipelineStats::default(), |acc, s| acc.merge(s))
    }

    /// Total volume attaches across the batch.
    pub fn total_attaches(&self) -> u32 {
        self.volumes.iter().map(|v| v.attaches).sum()
    }

    /// Total records emitted across the batch.
    pub fn total_records(&self) -> u64 {
        self.per_query.iter().map(|s| s.step4.emitted).sum()
    }
}

/// A many-query search session over a sharded [`Database`].
///
/// The cross-volume contract: for each query, every volume is searched
/// (in id order, through at most [`DbOptions::window`] concurrently
/// attached volume sessions) and all volumes' records are pushed into
/// the caller's sink **before** the single [`RecordSink::end_query`]
/// fires —
/// so the sink's one boundary sort merges volumes under
/// `M8Record::total_order`, and multi-volume output is byte-identical to
/// a single-bank run over the concatenated input.
///
/// E-values are computed over the database-wide effective search space:
/// the session forces
/// [`OrisConfig::subject_space`](oris_core::OrisConfig) to
/// `SubjectSpace::Database(total_residues)` from the manifest (an
/// explicit `Database(_)` already set by the caller — a `--dbsize`
/// override — is kept).
///
/// The failure model (quarantine, retries, deadlines) is described in
/// the [module docs](self) and on [`DbSession::run_query_deadline`].
pub struct DbSession<'d> {
    db: &'d Database,
    cfg: OrisConfig,
    opts: DbOptions,
    cache: VolumeCache,
    costs: Vec<VolumeCost>,
    /// Quarantined volumes (the session-lifetime skip set under
    /// [`OnVolumeError::SkipAndReport`]) and why each was quarantined.
    quarantined: Vec<Option<DbError>>,
    /// Volume-level result cache, present iff
    /// [`DbOptions::result_cache_bytes`] > 0.
    results: Option<ResultCache>,
    /// [`cache::config_fingerprint`] of the effective configuration,
    /// computed once (the config is immutable for the session).
    config_fp: u64,
    /// Observability handle ([`Obs::disarmed`] by default). Strictly
    /// off the result path: armed or not, records and reports are
    /// identical (pinned by the `db_equivalence` proptests).
    obs: Obs,
}

/// Attached volume sessions. The unbounded form is a dense slot table
/// (O(1) lookup — a linear scan would cost O(V²) id comparisons per
/// query on a many-volume database); the bounded form holds at most
/// `window` entries, where a linear scan is the point (window is small).
enum VolumeCache {
    /// Unbounded window: one slot per volume id, never evicts.
    All(Vec<Option<Session<'static>>>),
    /// Bounded window: eviction is Belady-optimal for the session's
    /// fixed cyclic scan, see [`DbSession::attach_if_needed`].
    Window(Vec<(usize, Session<'static>)>),
}

impl VolumeCache {
    /// The attached session for volume `v` (must be attached). A method
    /// on the cache, not on [`DbSession`], so the borrow stays
    /// field-granular: the parallel path holds volume sessions across a
    /// scope while other session fields are read.
    fn get(&self, v: usize) -> &Session<'static> {
        match self {
            VolumeCache::All(slots) => slots[v].as_ref().expect("volume attached"),
            VolumeCache::Window(entries) => {
                &entries
                    .iter()
                    .find(|(id, _)| *id == v)
                    .expect("volume attached")
                    .1
            }
        }
    }
}

impl<'d> DbSession<'d> {
    /// Builds a session over `db` under `cfg`, validating that the
    /// configuration matches how the database was built (indexed word
    /// length, stride, filter). No volume is attached yet.
    pub fn new(
        db: &'d Database,
        cfg: &OrisConfig,
        opts: DbOptions,
    ) -> Result<DbSession<'d>, DbError> {
        cfg.validate().map_err(DbError::Config)?;
        let m = db.manifest();
        let icfg = cfg.subject_index_config();
        if icfg.w != m.w || icfg.stride != m.stride {
            return Err(DbError::Config(format!(
                "database was built with w={} stride={}, configuration needs w={} stride={} \
                 (check -W / --asymmetric)",
                m.w, m.stride, icfg.w, icfg.stride
            )));
        }
        if cfg.filter.code() != m.filter_code {
            return Err(DbError::Config(format!(
                "database was built under filter code {}, configuration requests {:?} \
                 (code {})",
                m.filter_code,
                cfg.filter,
                cfg.filter.code()
            )));
        }
        let mut cfg = *cfg;
        if cfg.subject_space == SubjectSpace::PerSequence {
            cfg.subject_space = SubjectSpace::Database(db.total_residues());
        }
        let cache = if opts.window == 0 || opts.window >= db.num_volumes() {
            VolumeCache::All((0..db.num_volumes()).map(|_| None).collect())
        } else {
            VolumeCache::Window(Vec::with_capacity(opts.window))
        };
        if opts.volume_workers > 1 && matches!(cache, VolumeCache::Window(_)) {
            return Err(DbError::Config(format!(
                "volume_workers={} needs every volume attached at once, which contradicts the \
                 bounded window={} (use window=0, or window >= {} volumes)",
                opts.volume_workers,
                opts.window,
                db.num_volumes()
            )));
        }
        let results = if opts.result_cache_bytes > 0 {
            Some(ResultCache::new(opts.result_cache_bytes))
        } else {
            None
        };
        let config_fp = cache::config_fingerprint(&cfg);
        Ok(DbSession {
            db,
            cfg,
            opts,
            cache,
            costs: vec![VolumeCost::default(); db.num_volumes()],
            quarantined: (0..db.num_volumes()).map(|_| None).collect(),
            results,
            config_fp,
            obs: Obs::disarmed(),
        })
    }

    /// Installs an observability handle. Volume sessions attached so
    /// far (and every future attach) share it, so their step-level
    /// spans land in the same trace. Instrumentation never changes
    /// what a query computes — only what gets recorded about it.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
        match &mut self.cache {
            VolumeCache::All(slots) => {
                for s in slots.iter_mut().flatten() {
                    s.set_obs(self.obs.clone());
                }
            }
            VolumeCache::Window(entries) => {
                for (_, s) in entries.iter_mut() {
                    s.set_obs(self.obs.clone());
                }
            }
        }
    }

    /// The effective configuration (with the database-wide
    /// `subject_space` applied).
    pub fn config(&self) -> &OrisConfig {
        &self.cfg
    }

    /// Per-volume attach cost attribution so far.
    pub fn volume_costs(&self) -> &[VolumeCost] {
        &self.costs
    }

    /// Result-cache counters so far (hits, misses, insertions,
    /// evictions, residency). All zeros when the cache is disabled
    /// ([`DbOptions::result_cache_bytes`] = 0).
    pub fn result_cache_counters(&self) -> CacheCounters {
        self.results
            .as_ref()
            .map(ResultCache::counters)
            .unwrap_or_default()
    }

    /// Volumes quarantined so far this session, with the error that
    /// condemned each (only ever non-empty under
    /// [`OnVolumeError::SkipAndReport`]).
    pub fn quarantined(&self) -> impl Iterator<Item = (usize, &DbError)> {
        self.quarantined
            .iter()
            .enumerate()
            .filter_map(|(v, e)| e.as_ref().map(|e| (v, e)))
    }

    /// Whether the cache already holds volume `v`.
    fn is_attached(&self, v: usize) -> bool {
        match &self.cache {
            VolumeCache::All(slots) => slots[v].is_some(),
            VolumeCache::Window(entries) => entries.iter().any(|(id, _)| *id == v),
        }
    }

    /// Attaches volume `v` into the cache (evicting under a bounded
    /// window), retrying transient failures per the options. `retries`
    /// accumulates into the current query's report.
    ///
    /// Eviction policy: every query scans volumes in ascending id order
    /// and wraps, so the access pattern is known exactly — the next use
    /// of cached volume `j` while attaching `v` is `(j − v) mod V` steps
    /// away. Evicting the furthest-next-use entry is Belady's optimal
    /// policy for this scan. (Plain LRU would be pathological here: the
    /// cyclic scan evicts every entry just before its reuse, giving a 0%
    /// hit rate for any window smaller than the volume count.)
    fn attach_if_needed(&mut self, v: usize, retries: &mut u32) -> Result<(), DbError> {
        if self.is_attached(v) {
            return Ok(());
        }
        if let VolumeCache::Window(entries) = &mut self.cache {
            let num = self.db.num_volumes();
            while entries.len() >= self.opts.window {
                let evict = entries
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, (id, _))| (id + num - v) % num)
                    .map(|(pos, _)| pos)
                    .expect("cache non-empty while at capacity");
                // Dropping the session frees the volume's bank, minus
                // strand and (heap or mapped) index before the next
                // volume attaches — the bounded-memory guarantee.
                entries.remove(evict);
            }
        }
        let span = self.obs.timed_span_with(
            "attach",
            names::VOLUME_ATTACH_SECONDS,
            &[Field::U64("volume", v as u64)],
        );
        let mut attempt = 0u32;
        let (prepared, attach) = loop {
            match self.db.attach_volume(v, self.opts.attach) {
                Ok(ok) => break ok,
                Err(e)
                    if self.opts.on_volume_error == OnVolumeError::SkipAndReport
                        && attempt < self.opts.retries
                        && e.is_transient() =>
                {
                    // Exponential backoff: base, 2·base, 4·base, …
                    std::thread::sleep(self.opts.retry_backoff * (1u32 << attempt.min(16)) / 2);
                    attempt += 1;
                    *retries += 1;
                    self.costs[v].retries += 1;
                    self.obs.count(names::IO_RETRIES_TOTAL, 1);
                }
                Err(e) => return Err(e),
            }
        };
        let bank_bytes = prepared.bank().heap_bytes();
        let mut session = Session::with_subject(prepared, &self.cfg).map_err(DbError::Config)?;
        session.set_obs(self.obs.clone());
        self.obs.count(names::VOLUME_ATTACHES_TOTAL, 1);
        drop(span);
        let cost = &mut self.costs[v];
        cost.attaches += 1;
        cost.attach_secs += attach.attach_secs;
        cost.strand_build_secs += session.subject_stats().build_secs;
        cost.index_heap_bytes = attach.index_heap_bytes + bank_bytes;
        cost.mmap_backed = attach.mmap_backed;
        match &mut self.cache {
            VolumeCache::All(slots) => slots[v] = Some(session),
            VolumeCache::Window(entries) => entries.push((v, session)),
        }
        Ok(())
    }

    /// Routes an attach failure per the policy: under
    /// [`OnVolumeError::SkipAndReport`] a volume failure quarantines the
    /// volume and the query continues; everything else (and every
    /// failure under [`OnVolumeError::Fail`]) aborts the query. A
    /// quarantined volume's result-cache entries are dropped on the
    /// spot: a volume that failed is never served from the cache again.
    fn quarantine_or_fail(&mut self, v: usize, e: DbError) -> Result<(), DbError> {
        match (self.opts.on_volume_error, &e) {
            (OnVolumeError::SkipAndReport, DbError::Volume(_)) => {
                self.quarantined[v] = Some(e);
                self.obs.count(names::VOLUME_QUARANTINES_TOTAL, 1);
                self.obs
                    .point("quarantine", &[Field::U64("volume", v as u64)]);
                if let Some(results) = self.results.as_mut() {
                    results.invalidate_volume(v);
                }
                Ok(())
            }
            _ => Err(e),
        }
    }

    /// Converts a tripped deadline into the query's error, counting the
    /// expiry on the way out.
    fn deadline_exceeded(&self) -> DbError {
        self.obs.count(names::DEADLINE_EXPIRIES_TOTAL, 1);
        DbError::from(DeadlineExceeded)
    }

    /// Runs one query bank across every volume, streaming all volumes'
    /// records into `sink` and firing exactly one `end_query` at the end.
    /// The returned report merges the per-volume runs and counts the
    /// query's single index build; volume attach costs accumulate in
    /// [`DbSession::volume_costs`]. (This is
    /// [`DbSession::run_query_reported`] minus the coverage report — the
    /// options' policy and deadline still apply.)
    ///
    /// Error atomicity: the only mid-query failure sources are a volume
    /// *attach* (the per-volume search itself cannot fail) and an armed
    /// deadline. With an unbounded window (the default, and every
    /// `window ≥ volumes` configuration) all volumes are attached
    /// **before** the first record flows, and deadline-guarded queries
    /// buffer their records internally until the scan completes — so on
    /// `Err` the caller's sink is untouched: no records, no boundary —
    /// and the sink's own retention policy (e.g.
    /// [`oris_core::TopKSink`]'s O(k) bound) holds unweakened, records
    /// streaming straight through. With a bounded window, attaches
    /// necessarily interleave with the scan; a volume whose files were
    /// deleted or corrupted *after* [`Database::open`] validated them
    /// then aborts the query mid-stream under [`OnVolumeError::Fail`],
    /// and the sink may hold a partial query — discard it on `Err` (the
    /// CLI discards its whole output). Under
    /// [`OnVolumeError::SkipAndReport`] an attach failure never aborts
    /// the query, so the bounded window regains sink-atomicity for
    /// everything but sink failures themselves.
    pub fn run_query_into(
        &mut self,
        query: &Bank,
        sink: &mut dyn RecordSink,
    ) -> Result<PipelineStats, DbError> {
        self.run_query_reported(query, sink).map(|(stats, _)| stats)
    }

    /// [`DbSession::run_query_into`] returning the query's
    /// [`SearchReport`] alongside the pipeline stats. Arms a fresh
    /// deadline from [`DbOptions::deadline`] if one is configured.
    pub fn run_query_reported(
        &mut self,
        query: &Bank,
        sink: &mut dyn RecordSink,
    ) -> Result<(PipelineStats, SearchReport), DbError> {
        let deadline = match self.opts.deadline {
            Some(budget) => Deadline::after(budget),
            None => Deadline::none(),
        };
        self.run_query_deadline(query, sink, &deadline)
    }

    /// The full-control query entry point: explicit [`Deadline`] token
    /// (e.g. [`Deadline::cancellable`] driven by a supervisor thread).
    ///
    /// Deadline guarantees:
    ///
    /// * The token is checked at every volume boundary and, inside each
    ///   volume, at step-2 partition boundaries (and every few thousand
    ///   extension pairs within a hot partition) — the places a
    ///   pathological query actually spends its time.
    /// * On expiry the query returns [`DbError::DeadlineExceeded`] and
    ///   the caller's sink is **untouched** — armed queries stage their
    ///   records in an internal buffer and only stream into `sink` after
    ///   every volume completed (the buffer is the records of one query,
    ///   the same working set a `CollectSink` would hold; the disarmed
    ///   path streams straight through with zero overhead and zero
    ///   buffering).
    /// * The session remains fully usable: the next query runs normally,
    ///   volumes attached before the expiry stay attached, and no volume
    ///   is quarantined by a deadline (slowness is not corruption).
    /// * A query that completes under a deadline is byte-identical to
    ///   the same query without one: the token never changes what is
    ///   computed.
    pub fn run_query_deadline(
        &mut self,
        query: &Bank,
        sink: &mut dyn RecordSink,
        deadline: &Deadline,
    ) -> Result<(PipelineStats, SearchReport), DbError> {
        let num = self.db.num_volumes();
        let query_span = self.obs.timed_span("query", names::QUERY_SECONDS);
        let mut report = SearchReport {
            volumes_total: num,
            residues_total: self.db.total_residues(),
            ..SearchReport::default()
        };
        // Phase 0 — cache probe. One query fingerprint, one O(1) probe
        // per live volume; a hit withdraws the volume from attach and
        // search entirely (its records replay in the merge phase below).
        // Quarantined volumes are never probed: their entries were
        // invalidated at quarantine time.
        let query_fp = self
            .results
            .as_ref()
            .map(|_| cache::bank_fingerprint(query));
        let mut hits: Vec<Option<crate::cache::CachedVolume>> = (0..num).map(|_| None).collect();
        if let (Some(results), Some(qfp)) = (self.results.as_mut(), query_fp) {
            let lookup_span = self.obs.span("cache_lookup");
            for (v, hit) in hits.iter_mut().enumerate() {
                if self.quarantined[v].is_some() {
                    continue;
                }
                let key = CacheKey {
                    query: qfp,
                    volume: v,
                    volume_hash: self.db.volume(v).bank_hash,
                    config: self.config_fp,
                };
                *hit = results.lookup(&key).cloned();
                self.obs.count(
                    if hit.is_some() {
                        names::CACHE_HITS_TOTAL
                    } else {
                        names::CACHE_MISSES_TOTAL
                    },
                    1,
                );
            }
            drop(lookup_span);
        }
        if self.opts.window == 0 || self.opts.window >= num {
            // Attach-ahead: cached sessions make this a no-op after the
            // first query; any attach failure surfaces here, before the
            // sink sees a single record. Cache-hit volumes skip attach —
            // a hit is served without touching the volume's files (the
            // same staleness contract an already-attached volume has).
            for (v, hit) in hits.iter().enumerate() {
                deadline.check().map_err(|_| self.deadline_exceeded())?;
                if self.quarantined[v].is_some() || hit.is_some() || self.is_attached(v) {
                    continue;
                }
                if let Err(e) = self.attach_if_needed(v, &mut report.retries) {
                    self.quarantine_or_fail(v, e)?;
                }
            }
        }
        // The query is prepared once for the whole database, exactly as a
        // single-bank session prepares it once for both strands.
        let prep = PreparedBank::prepare(query, self.cfg.filter, self.cfg.query_index_config());
        let caching = query_fp.is_some();
        let workers = self.opts.volume_workers.max(1);
        // Per-volume fresh search results, staged out-of-sink. `None`
        // for quarantined, cache-hit and (in direct-stream mode)
        // already-streamed volumes is disambiguated in the merge phase.
        let mut fresh: Vec<StagedResult> = (0..num).map(|_| None).collect();
        // Direct-stream mode: no deadline, no cache, one worker — the
        // original zero-buffer path, records flow straight into `sink`.
        let direct = !deadline.is_armed() && !caching && workers == 1;
        let mut direct_stats: Option<PipelineStats> = None;
        if workers == 1 {
            for v in 0..num {
                if self.quarantined[v].is_some() || hits[v].is_some() {
                    continue;
                }
                deadline.check().map_err(|_| self.deadline_exceeded())?;
                if let Err(e) = self.attach_if_needed(v, &mut report.retries) {
                    self.quarantine_or_fail(v, e)?;
                    continue;
                }
                self.obs.count(names::WORKER_DISPATCH_TOTAL, 1);
                let vspan = self.obs.timed_span_with(
                    "volume_search",
                    names::VOLUME_SEARCH_SECONDS,
                    &[Field::U64("volume", v as u64)],
                );
                let session = self.cache.get(v);
                if direct {
                    let stats = session
                        .run_prepared_streaming_deadline(&prep, sink, deadline)
                        .map_err(|_| self.deadline_exceeded())?;
                    direct_stats = Some(match direct_stats.take() {
                        None => stats,
                        Some(m) => m.merge(&stats),
                    });
                    report.searched.push(v);
                    report.residues_searched += self.db.volume(v).residues;
                } else {
                    let mut buf = CollectSink::new();
                    let stats = session
                        .run_prepared_streaming_deadline(&prep, &mut buf, deadline)
                        .map_err(|_| self.deadline_exceeded())?;
                    fresh[v] = Some((buf.into_records(), stats));
                }
                drop(vspan);
            }
        } else {
            // Parallel fan-out. Attach (and with it every retry and
            // quarantine decision) already happened above — `new()`
            // guarantees the unbounded window — so the workers only ever
            // touch attached, healthy volumes: the per-volume search
            // itself cannot fail except by deadline expiry.
            let pending: Vec<usize> = (0..num)
                .filter(|&v| self.quarantined[v].is_none() && hits[v].is_none())
                .collect();
            let sessions: Vec<&Session<'static>> =
                pending.iter().map(|&v| self.cache.get(v)).collect();
            let slots: Vec<Mutex<StagedResult>> =
                pending.iter().map(|_| Mutex::new(None)).collect();
            let cursor = AtomicUsize::new(0);
            let stop = AtomicBool::new(false);
            let spawned = workers.min(pending.len());
            let obs = &self.obs;
            rayon::scope(|s| {
                for _ in 0..spawned {
                    s.spawn(|_| {
                        // Dispatch loop: claim the next unsearched volume,
                        // stage its records privately, repeat. Expiry (or
                        // a sibling's) stops *dispatching* — volumes not
                        // yet claimed are never started.
                        loop {
                            if stop.load(Ordering::Relaxed) || deadline.expired() {
                                stop.store(true, Ordering::Relaxed);
                                break;
                            }
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= pending.len() {
                                break;
                            }
                            obs.count(names::WORKER_DISPATCH_TOTAL, 1);
                            let vspan = obs.timed_span_with(
                                "volume_search",
                                names::VOLUME_SEARCH_SECONDS,
                                &[Field::U64("volume", pending[i] as u64)],
                            );
                            let mut buf = CollectSink::new();
                            match sessions[i]
                                .run_prepared_streaming_deadline(&prep, &mut buf, deadline)
                            {
                                Ok(stats) => {
                                    *slots[i].lock().expect("slot lock") =
                                        Some((buf.into_records(), stats));
                                }
                                Err(DeadlineExceeded) => {
                                    stop.store(true, Ordering::Relaxed);
                                    drop(vspan);
                                    break;
                                }
                            }
                            drop(vspan);
                        }
                    });
                }
            });
            for (i, slot) in slots.into_iter().enumerate() {
                match slot.into_inner().expect("slot lock") {
                    Some(done) => fresh[pending[i]] = Some(done),
                    // The only way a slot stays empty is expiry (claimed
                    // and aborted, or never dispatched). The sink is
                    // untouched: every record is still staged.
                    None => return Err(self.deadline_exceeded()),
                }
            }
        }
        // Merge phase — strictly ascending volume order, so stats
        // accumulate exactly as the sequential walk's and the report's
        // lists come out sorted. Record arrival order into the sink is
        // irrelevant: its boundary sort below is a strict total order.
        let merge_span = self.obs.span("merge");
        let mut merged = direct_stats;
        for v in 0..num {
            let (records, stats, hit) = if let Some(cached) = hits[v].take() {
                (cached.records, cached.stats, true)
            } else if let Some((records, stats)) = fresh[v].take() {
                // A completed volume search is cacheable even though its
                // records are about to be consumed: clone into the cache
                // first. (Only complete searches reach here — an aborted
                // query returned above without touching `fresh`'s
                // staging.)
                if let (Some(results), Some(qfp)) = (self.results.as_mut(), query_fp) {
                    let key = CacheKey {
                        query: qfp,
                        volume: v,
                        volume_hash: self.db.volume(v).bank_hash,
                        config: self.config_fp,
                    };
                    results.insert(key, records.clone(), stats);
                    self.obs.count(names::CACHE_INSERTIONS_TOTAL, 1);
                }
                (records, stats, false)
            } else if self.quarantined[v].is_some() {
                report.skipped.push(v);
                continue;
            } else {
                // Direct-stream mode already pushed this volume's records
                // and accounted it; nothing staged.
                continue;
            };
            for record in records {
                sink.accept(record);
            }
            merged = Some(match merged.take() {
                None => stats,
                Some(m) => m.merge(&stats),
            });
            report.searched.push(v);
            report.residues_searched += self.db.volume(v).residues;
            if hit {
                report.cache_hits.push(v);
            }
        }
        // An end_query failure is the caller's *output* stream failing
        // (e.g. a full disk under a StreamWriter), not a database
        // problem — attribute it to the sink, never to the (read-only)
        // database directory.
        sink.end_query().map_err(DbError::Sink)?;
        drop(merge_span);
        let mut stats = merged.unwrap_or_default();
        stats.index_secs += prep.stats().build_secs;
        stats.index_builds += prep.stats().builds;
        self.obs.count(names::QUERIES_TOTAL, 1);
        self.obs.count(names::RECORDS_TOTAL, stats.step4.emitted);
        // Residency and eviction counts live inside the ResultCache;
        // sync them as absolutes (hits/misses/insertions are counted at
        // their call sites above — the obs_metrics integration test
        // pins both views equal).
        if self.results.is_some() {
            let c = self.result_cache_counters();
            self.obs
                .set_counter(names::CACHE_EVICTIONS_TOTAL, c.evictions);
            self.obs
                .set_counter(names::CACHE_INVALIDATIONS_TOTAL, c.invalidations);
            self.obs.set_gauge(names::CACHE_ENTRIES, c.entries as f64);
            self.obs.set_gauge(names::CACHE_BYTES, c.bytes as f64);
        }
        drop(query_span);
        Ok((stats, report))
    }

    /// Collected form of [`DbSession::run_query_into`].
    pub fn run_query(&mut self, query: &Bank) -> Result<OrisResult, DbError> {
        let mut sink = CollectSink::new();
        let stats = self.run_query_into(query, &mut sink)?;
        Ok(OrisResult {
            alignments: sink.into_records(),
            stats,
        })
    }

    /// Runs a batch of query banks across the database — one
    /// `end_query` boundary per bank, in batch order, each query's
    /// working set freed before the next (and, with a small
    /// [`DbOptions::window`], each volume's too). The returned stats
    /// carry one [`SearchReport`] per query: under
    /// [`OnVolumeError::SkipAndReport`] a batch that limped over a bad
    /// volume says so, per query.
    pub fn run_batch<I>(
        &mut self,
        queries: I,
        sink: &mut dyn RecordSink,
    ) -> Result<DbBatchStats, DbError>
    where
        I: IntoIterator,
        I::Item: std::borrow::Borrow<Bank>,
    {
        use std::borrow::Borrow;
        let mut per_query = Vec::new();
        let mut reports = Vec::new();
        for q in queries {
            let (stats, report) = self.run_query_reported(q.borrow(), sink)?;
            per_query.push(stats);
            reports.push(report);
        }
        Ok(DbBatchStats {
            per_query,
            reports,
            volumes: self.costs.clone(),
        })
    }
}
