//! Cross-volume search: one query, every volume, one result stream.

use oris_core::{
    CollectSink, OrisConfig, OrisResult, PipelineStats, PreparedBank, RecordSink, Session,
};
use oris_eval::SubjectSpace;
use oris_index::AttachMode;
use oris_seqio::Bank;

use crate::database::{Database, DbError};

/// Options for a [`DbSession`].
#[derive(Debug, Clone, Copy)]
pub struct DbOptions {
    /// How volume indexes are brought into memory ([`AttachMode::Mmap`]
    /// by default — postings/offsets referenced zero-copy from the file).
    pub attach: AttachMode,
    /// Maximum volumes held attached at once. `0` (the default) keeps
    /// every volume attached after its first use — cheap under mmap,
    /// where an attached volume's heap cost is its bank plus bit-set, not
    /// its postings. A small window (e.g. 1) re-attaches volumes per
    /// query and bounds resident memory to one volume's working set.
    pub window: usize,
}

impl Default for DbOptions {
    fn default() -> DbOptions {
        DbOptions {
            attach: AttachMode::Mmap,
            window: 0,
        }
    }
}

/// Per-volume step-1 cost attribution for a database session: what was
/// paid to make each volume searchable, kept separate from the per-query
/// pipeline reports exactly like `Session`'s subject-vs-query split.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VolumeCost {
    /// Times this volume was attached (more than 1 only when the window
    /// evicted it between queries).
    pub attaches: u32,
    /// Seconds spent attaching (FASTA re-read + index map/read), summed
    /// over attaches.
    pub attach_secs: f64,
    /// Seconds spent building minus-strand indexes (only non-zero for
    /// `both_strands` configurations — an index file stores one strand).
    pub strand_build_secs: f64,
    /// Heap bytes of the most recent attach (bank + index; near the bank
    /// size alone for an mmap attach).
    pub index_heap_bytes: usize,
    /// Whether the most recent attach was mmap-backed.
    pub mmap_backed: bool,
}

/// Report of one [`DbSession::run_batch`]: per-query pipeline reports (in
/// batch order) plus the volume attach costs paid so far — the
/// database-session analogue of `oris_core::BatchStats`, with volume
/// attaches playing the subject-build role (attributed once per attach,
/// never folded into per-query reports).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DbBatchStats {
    /// Per-query merged reports (each sums that query's runs across all
    /// volumes; `index_builds` counts exactly the query's own build).
    pub per_query: Vec<PipelineStats>,
    /// Per-volume attach costs at batch end.
    pub volumes: Vec<VolumeCost>,
}

impl DbBatchStats {
    /// Number of queries run.
    pub fn queries(&self) -> usize {
        self.per_query.len()
    }

    /// Sum of the per-query reports.
    pub fn query_totals(&self) -> PipelineStats {
        self.per_query
            .iter()
            .fold(PipelineStats::default(), |acc, s| acc.merge(s))
    }

    /// Total volume attaches across the batch.
    pub fn total_attaches(&self) -> u32 {
        self.volumes.iter().map(|v| v.attaches).sum()
    }

    /// Total records emitted across the batch.
    pub fn total_records(&self) -> u64 {
        self.per_query.iter().map(|s| s.step4.emitted).sum()
    }
}

/// A many-query search session over a sharded [`Database`].
///
/// The cross-volume contract: for each query, every volume is searched
/// (in id order, through at most [`DbOptions::window`] concurrently
/// attached volume sessions) and all volumes' records are pushed into
/// the caller's sink **before** the single [`RecordSink::end_query`]
/// fires —
/// so the sink's one boundary sort merges volumes under
/// `M8Record::total_order`, and multi-volume output is byte-identical to
/// a single-bank run over the concatenated input.
///
/// E-values are computed over the database-wide effective search space:
/// the session forces
/// [`OrisConfig::subject_space`](oris_core::OrisConfig) to
/// `SubjectSpace::Database(total_residues)` from the manifest (an
/// explicit `Database(_)` already set by the caller — a `--dbsize`
/// override — is kept).
pub struct DbSession<'d> {
    db: &'d Database,
    cfg: OrisConfig,
    opts: DbOptions,
    cache: VolumeCache,
    costs: Vec<VolumeCost>,
}

/// Attached volume sessions. The unbounded form is a dense slot table
/// (O(1) lookup — a linear scan would cost O(V²) id comparisons per
/// query on a many-volume database); the bounded form holds at most
/// `window` entries, where a linear scan is the point (window is small).
enum VolumeCache {
    /// Unbounded window: one slot per volume id, never evicts.
    All(Vec<Option<Session<'static>>>),
    /// Bounded window: eviction is Belady-optimal for the session's
    /// fixed cyclic scan, see [`DbSession::session_for`].
    Window(Vec<(usize, Session<'static>)>),
}

impl<'d> DbSession<'d> {
    /// Builds a session over `db` under `cfg`, validating that the
    /// configuration matches how the database was built (indexed word
    /// length, stride, filter). No volume is attached yet.
    pub fn new(
        db: &'d Database,
        cfg: &OrisConfig,
        opts: DbOptions,
    ) -> Result<DbSession<'d>, DbError> {
        cfg.validate().map_err(DbError::Config)?;
        let m = db.manifest();
        let icfg = cfg.subject_index_config();
        if icfg.w != m.w || icfg.stride != m.stride {
            return Err(DbError::Config(format!(
                "database was built with w={} stride={}, configuration needs w={} stride={} \
                 (check -W / --asymmetric)",
                m.w, m.stride, icfg.w, icfg.stride
            )));
        }
        if cfg.filter.code() != m.filter_code {
            return Err(DbError::Config(format!(
                "database was built under filter code {}, configuration requests {:?} \
                 (code {})",
                m.filter_code,
                cfg.filter,
                cfg.filter.code()
            )));
        }
        let mut cfg = *cfg;
        if cfg.subject_space == SubjectSpace::PerSequence {
            cfg.subject_space = SubjectSpace::Database(db.total_residues());
        }
        let cache = if opts.window == 0 || opts.window >= db.num_volumes() {
            VolumeCache::All((0..db.num_volumes()).map(|_| None).collect())
        } else {
            VolumeCache::Window(Vec::with_capacity(opts.window))
        };
        Ok(DbSession {
            db,
            cfg,
            opts,
            cache,
            costs: vec![VolumeCost::default(); db.num_volumes()],
        })
    }

    /// The effective configuration (with the database-wide
    /// `subject_space` applied).
    pub fn config(&self) -> &OrisConfig {
        &self.cfg
    }

    /// Per-volume attach cost attribution so far.
    pub fn volume_costs(&self) -> &[VolumeCost] {
        &self.costs
    }

    /// The session for volume `v`, attaching (and possibly evicting a
    /// cached volume) as needed.
    ///
    /// Eviction policy: every query scans volumes in ascending id order
    /// and wraps, so the access pattern is known exactly — the next use
    /// of cached volume `j` while attaching `v` is `(j − v) mod V` steps
    /// away. Evicting the furthest-next-use entry is Belady's optimal
    /// policy for this scan. (Plain LRU would be pathological here: the
    /// cyclic scan evicts every entry just before its reuse, giving a 0%
    /// hit rate for any window smaller than the volume count.)
    fn session_for(&mut self, v: usize) -> Result<&Session<'static>, DbError> {
        let needs_attach = match &self.cache {
            VolumeCache::All(slots) => slots[v].is_none(),
            VolumeCache::Window(entries) => !entries.iter().any(|(id, _)| *id == v),
        };
        if needs_attach {
            if let VolumeCache::Window(entries) = &mut self.cache {
                let num = self.db.num_volumes();
                while entries.len() >= self.opts.window {
                    let evict = entries
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, (id, _))| (id + num - v) % num)
                        .map(|(pos, _)| pos)
                        .expect("cache non-empty while at capacity");
                    // Dropping the session frees the volume's bank, minus
                    // strand and (heap or mapped) index before the next
                    // volume attaches — the bounded-memory guarantee.
                    entries.remove(evict);
                }
            }
            let (prepared, attach) = self.db.attach_volume(v, self.opts.attach)?;
            let bank_bytes = prepared.bank().heap_bytes();
            let session = Session::with_subject(prepared, &self.cfg).map_err(DbError::Config)?;
            let cost = &mut self.costs[v];
            cost.attaches += 1;
            cost.attach_secs += attach.attach_secs;
            cost.strand_build_secs += session.subject_stats().build_secs;
            cost.index_heap_bytes = attach.index_heap_bytes + bank_bytes;
            cost.mmap_backed = attach.mmap_backed;
            match &mut self.cache {
                VolumeCache::All(slots) => slots[v] = Some(session),
                VolumeCache::Window(entries) => entries.push((v, session)),
            }
        }
        Ok(match &self.cache {
            VolumeCache::All(slots) => slots[v].as_ref().expect("attached above"),
            VolumeCache::Window(entries) => {
                &entries
                    .iter()
                    .find(|(id, _)| *id == v)
                    .expect("attached above")
                    .1
            }
        })
    }

    /// Runs one query bank across every volume, streaming all volumes'
    /// records into `sink` and firing exactly one `end_query` at the end.
    /// The returned report merges the per-volume runs and counts the
    /// query's single index build; volume attach costs accumulate in
    /// [`DbSession::volume_costs`].
    ///
    /// Error atomicity: the only mid-query failure source is a volume
    /// *attach* (the per-volume search itself cannot fail). With an
    /// unbounded window (the default, and every `window ≥ volumes`
    /// configuration) all volumes are attached **before** the first
    /// record flows, so on `Err` the caller's sink is untouched — no
    /// records, no boundary — and the sink's own retention policy (e.g.
    /// [`oris_core::TopKSink`]'s O(k) bound) holds unweakened, records
    /// streaming straight through. With a bounded window, attaches
    /// necessarily interleave with the scan; a volume whose files were
    /// deleted or corrupted *after* [`Database::open`] validated them
    /// then aborts the query mid-stream, and the sink may hold a partial
    /// query — discard it on `Err` (the CLI discards its whole output).
    pub fn run_query_into(
        &mut self,
        query: &Bank,
        sink: &mut dyn RecordSink,
    ) -> Result<PipelineStats, DbError> {
        let num = self.db.num_volumes();
        if self.opts.window == 0 || self.opts.window >= num {
            // Attach-ahead: cached sessions make this a no-op after the
            // first query; any attach failure surfaces here, before the
            // sink sees a single record.
            for v in 0..num {
                self.session_for(v)?;
            }
        }
        // The query is prepared once for the whole database, exactly as a
        // single-bank session prepares it once for both strands.
        let prep = PreparedBank::prepare(query, self.cfg.filter, self.cfg.query_index_config());
        let mut merged: Option<PipelineStats> = None;
        for v in 0..num {
            let session = self.session_for(v)?;
            let stats = session.run_prepared_streaming(&prep, sink);
            merged = Some(match merged {
                None => stats,
                Some(m) => m.merge(&stats),
            });
        }
        // An end_query failure is the caller's *output* stream failing
        // (e.g. a full disk under a StreamWriter), not a database
        // problem — attribute it to the sink, never to the (read-only)
        // database directory.
        sink.end_query().map_err(DbError::Sink)?;
        let mut stats = merged.unwrap_or_default();
        stats.index_secs += prep.stats().build_secs;
        stats.index_builds += prep.stats().builds;
        Ok(stats)
    }

    /// Collected form of [`DbSession::run_query_into`].
    pub fn run_query(&mut self, query: &Bank) -> Result<OrisResult, DbError> {
        let mut sink = CollectSink::new();
        let stats = self.run_query_into(query, &mut sink)?;
        Ok(OrisResult {
            alignments: sink.into_records(),
            stats,
        })
    }

    /// Runs a batch of query banks across the database — one
    /// `end_query` boundary per bank, in batch order, each query's
    /// working set freed before the next (and, with a small
    /// [`DbOptions::window`], each volume's too).
    pub fn run_batch<I>(
        &mut self,
        queries: I,
        sink: &mut dyn RecordSink,
    ) -> Result<DbBatchStats, DbError>
    where
        I: IntoIterator,
        I::Item: std::borrow::Borrow<Bank>,
    {
        use std::borrow::Borrow;
        let mut per_query = Vec::new();
        for q in queries {
            per_query.push(self.run_query_into(q.borrow(), sink)?);
        }
        Ok(DbBatchStats {
            per_query,
            volumes: self.costs.clone(),
        })
    }
}
