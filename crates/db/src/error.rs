//! Typed database errors with a preserved cause chain.
//!
//! The failure model's first requirement is *diagnosability*: an
//! operator (or `verifydb`, or a retry policy) must be able to tell a
//! transient I/O hiccup from durable corruption without string-matching
//! display text. Every error here therefore keeps its underlying cause
//! as a typed value — [`std::error::Error::source`] walks the real
//! chain (`DbError` → [`VolumeError`] → the `io::Error` /
//! [`PersistError`] / [`SeqIoError`] that started it), and
//! [`DbError::is_transient`] / [`VolumeCause::is_transient`] encode the
//! retry policy's classification in one place.

use std::path::PathBuf;

use oris_core::DeadlineExceeded;
use oris_index::PersistError;
use oris_seqio::SeqIoError;

/// Why a database could not be opened, attached, built or searched.
#[derive(Debug)]
pub enum DbError {
    /// I/O failure on a named path (manifest read, `makedb` writes).
    Io(PathBuf, std::io::Error),
    /// The manifest is missing, malformed or inconsistent.
    Manifest(String),
    /// A volume failed validation or could not be read — the typed
    /// per-volume failure [`verifydb`-style tooling and the quarantine
    /// policy dispatch on](VolumeError).
    Volume(VolumeError),
    /// The search configuration does not match the database.
    Config(String),
    /// The caller's result sink failed (e.g. the output stream behind a
    /// `StreamWriter` hit a full disk) — an *output* problem, kept
    /// distinct from the database's own paths so the operator debugs the
    /// right filesystem.
    Sink(std::io::Error),
    /// The query's cooperative deadline expired before every volume was
    /// searched. The caller's sink is untouched (deadline-guarded
    /// queries buffer internally) and the session remains usable.
    DeadlineExceeded(DeadlineExceeded),
}

impl DbError {
    /// Whether retrying the failed operation could plausibly succeed —
    /// the classification the bounded-retry policy uses. Only I/O-rooted
    /// volume failures qualify; corruption, mismatches and configuration
    /// errors are durable.
    pub fn is_transient(&self) -> bool {
        match self {
            DbError::Volume(v) => v.cause.is_transient(),
            _ => false,
        }
    }

    /// Process exit code for this error, shared by `scoris-n` and
    /// `verifydb` so operators script against one table:
    ///
    /// | code | meaning |
    /// |------|---------|
    /// | 2 | manifest missing, malformed or checksum-mismatched |
    /// | 3 | volume failed validation (corruption, mismatch, missing file) |
    /// | 4 | I/O error |
    /// | 5 | configuration does not match the database |
    /// | 6 | result sink / output stream failure |
    /// | 7 | query deadline exceeded |
    ///
    /// (Code 1 is the CLIs' generic usage-error exit and is never
    /// produced here; 0 is success.)
    pub fn exit_code(&self) -> u8 {
        match self {
            DbError::Io(..) => 4,
            DbError::Manifest(_) => 2,
            DbError::Volume(_) => 3,
            DbError::Config(_) => 5,
            DbError::Sink(_) => 6,
            DbError::DeadlineExceeded(_) => 7,
        }
    }
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Io(path, e) => write!(f, "{}: {e}", path.display()),
            DbError::Manifest(msg) => write!(f, "database manifest: {msg}"),
            DbError::Volume(v) => write!(f, "database volume: {v}"),
            DbError::Config(msg) => write!(f, "database configuration: {msg}"),
            DbError::Sink(e) => write!(f, "writing results: {e}"),
            DbError::DeadlineExceeded(_) => write!(f, "query deadline exceeded"),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Io(_, e) => Some(e),
            DbError::Sink(e) => Some(e),
            DbError::Volume(v) => Some(v),
            DbError::DeadlineExceeded(e) => Some(e),
            DbError::Manifest(_) | DbError::Config(_) => None,
        }
    }
}

impl From<DeadlineExceeded> for DbError {
    fn from(e: DeadlineExceeded) -> DbError {
        DbError::DeadlineExceeded(e)
    }
}

/// One volume's failure: which volume, which file, and the typed cause.
#[derive(Debug)]
pub struct VolumeError {
    /// Volume ordinal (manifest id).
    pub volume: usize,
    /// The file the failure is attributed to.
    pub path: PathBuf,
    /// What went wrong.
    pub cause: VolumeCause,
}

impl std::fmt::Display for VolumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "volume {}: {}: {}",
            self.volume,
            self.path.display(),
            self.cause
        )
    }
}

impl std::error::Error for VolumeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.cause {
            VolumeCause::Io(e) => Some(e),
            VolumeCause::Fasta(e) => Some(e),
            VolumeCause::Index(e) => Some(e),
            VolumeCause::Missing | VolumeCause::HashMismatch { .. } | VolumeCause::Mismatch(_) => {
                None
            }
        }
    }
}

/// The typed root cause of a [`VolumeError`].
#[derive(Debug)]
pub enum VolumeCause {
    /// The file named by the manifest does not exist.
    Missing,
    /// Reading the file failed — the only cause class the retry policy
    /// may treat as transient (see [`VolumeCause::is_transient`]).
    Io(std::io::Error),
    /// The volume FASTA no longer parses (corruption).
    Fasta(SeqIoError),
    /// The index file was rejected by the persist loader — the typed
    /// [`PersistError`] distinguishes its own I/O from bad magic,
    /// unsupported version and structural/checksum corruption.
    Index(PersistError),
    /// The volume bank's content hash does not match the manifest row —
    /// the file was rewritten after `makedb`.
    HashMismatch {
        /// Hash recorded in the manifest.
        expected: u64,
        /// Hash of the bytes actually on disk.
        actual: u64,
    },
    /// Any other manifest↔file disagreement: residue/sequence counts,
    /// index `w`/`stride`, index↔manifest content hash, or a
    /// `PreparedBank` attach rejection.
    Mismatch(String),
}

impl VolumeCause {
    /// Whether this cause is plausibly transient (worth a bounded
    /// retry). I/O errors qualify unless their kind indicates a durable
    /// condition (missing file, permission, truncation-style EOF,
    /// malformed data); everything else — parse failures, hash and
    /// configuration mismatches — is durable corruption.
    pub fn is_transient(&self) -> bool {
        fn io_transient(e: &std::io::Error) -> bool {
            use std::io::ErrorKind::*;
            !matches!(
                e.kind(),
                NotFound
                    | PermissionDenied
                    | InvalidData
                    | InvalidInput
                    | UnexpectedEof
                    | Unsupported
            )
        }
        match self {
            VolumeCause::Io(e) => io_transient(e),
            VolumeCause::Index(PersistError::Io(e)) => io_transient(e),
            _ => false,
        }
    }
}

impl std::fmt::Display for VolumeCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VolumeCause::Missing => write!(f, "file is missing"),
            VolumeCause::Io(e) => write!(f, "{e}"),
            VolumeCause::Fasta(e) => write!(f, "{e}"),
            VolumeCause::Index(e) => write!(f, "{e}"),
            VolumeCause::HashMismatch { expected, actual } => write!(
                f,
                "content hash {actual:016x} does not match the manifest \
                 ({expected:016x}) — volume rewritten after makedb?"
            ),
            VolumeCause::Mismatch(msg) => write!(f, "{msg}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    fn volume_err(cause: VolumeCause) -> DbError {
        DbError::Volume(VolumeError {
            volume: 3,
            path: PathBuf::from("/db/vol00003.fa"),
            cause,
        })
    }

    #[test]
    fn io_and_sink_expose_sources() {
        let e = DbError::Io("/db/manifest.orisdb".into(), std::io::Error::other("boom"));
        assert!(e
            .source()
            .unwrap()
            .downcast_ref::<std::io::Error>()
            .is_some());
        let e = DbError::Sink(std::io::Error::other("disk full"));
        assert!(e
            .source()
            .unwrap()
            .downcast_ref::<std::io::Error>()
            .is_some());
    }

    #[test]
    fn volume_chain_reaches_the_persist_error() {
        let e = volume_err(VolumeCause::Index(PersistError::BadMagic));
        let volume = e.source().unwrap().downcast_ref::<VolumeError>().unwrap();
        assert!(volume
            .source()
            .unwrap()
            .downcast_ref::<PersistError>()
            .is_some());
    }

    #[test]
    fn volume_chain_reaches_the_io_error() {
        let e = volume_err(VolumeCause::Io(std::io::Error::other("EIO")));
        let volume = e.source().unwrap().downcast_ref::<VolumeError>().unwrap();
        assert!(volume
            .source()
            .unwrap()
            .downcast_ref::<std::io::Error>()
            .is_some());
    }

    #[test]
    fn transient_classification() {
        use std::io::ErrorKind;
        assert!(volume_err(VolumeCause::Io(ErrorKind::Interrupted.into())).is_transient());
        assert!(volume_err(VolumeCause::Io(ErrorKind::TimedOut.into())).is_transient());
        assert!(volume_err(VolumeCause::Index(PersistError::Io(
            ErrorKind::Interrupted.into()
        )))
        .is_transient());
        // Durable conditions never qualify.
        assert!(!volume_err(VolumeCause::Io(ErrorKind::NotFound.into())).is_transient());
        assert!(!volume_err(VolumeCause::Io(ErrorKind::UnexpectedEof.into())).is_transient());
        assert!(!volume_err(VolumeCause::Missing).is_transient());
        assert!(!volume_err(VolumeCause::Index(PersistError::BadMagic)).is_transient());
        assert!(!volume_err(VolumeCause::HashMismatch {
            expected: 1,
            actual: 2
        })
        .is_transient());
        assert!(!DbError::Manifest("bad".into()).is_transient());
    }

    #[test]
    fn exit_codes_are_distinct() {
        let errors = [
            DbError::Io("x".into(), std::io::Error::other("e")),
            DbError::Manifest("m".into()),
            volume_err(VolumeCause::Missing),
            DbError::Config("c".into()),
            DbError::Sink(std::io::Error::other("s")),
            DbError::DeadlineExceeded(DeadlineExceeded),
        ];
        let mut codes: Vec<u8> = errors.iter().map(DbError::exit_code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errors.len(), "exit codes must be distinct");
        assert!(codes.iter().all(|&c| c >= 2), "codes 0/1 are reserved");
    }

    #[test]
    fn display_keeps_diagnostic_substrings() {
        // Substrings operators (and older tests) grep for.
        let e = volume_err(VolumeCause::Missing);
        assert!(e.to_string().contains("missing"), "{e}");
        let e = volume_err(VolumeCause::HashMismatch {
            expected: 0xa,
            actual: 0xb,
        });
        assert!(e.to_string().contains("content hash"), "{e}");
        let e = DbError::DeadlineExceeded(DeadlineExceeded);
        assert!(e.to_string().contains("deadline"), "{e}");
    }
}
