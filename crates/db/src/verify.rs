//! `verifydb` — offline integrity check (fsck) for a database directory.
//!
//! [`verify_db`] validates what [`Database::open`] deliberately defers:
//! it attaches **every** volume and walks the full identity-check chain
//! — manifest checksum, per-volume FASTA readability and content hash,
//! residue/sequence counts, index file structure (magic, version,
//! whole-stream checksum) and index ↔ manifest agreement — and reports
//! a verdict *per volume* instead of stopping at the first failure. A
//! database with one rotten volume yields one `FAILED` row and N−1 `OK`
//! rows, which is exactly what an operator deciding between "rebuild one
//! volume" and "rebuild everything" needs.

use std::path::Path;
use std::sync::Arc;

use oris_index::AttachMode;

use crate::database::{Database, DbError, VolumeCause};
use crate::io::VolumeIo;

/// Options for [`verify_db`].
#[derive(Debug, Clone, Copy)]
pub struct VerifyOptions {
    /// How each volume's index is loaded for checking. [`AttachMode::Mmap`]
    /// exercises the zero-copy loader (what a serving session uses);
    /// `HeapCopy` exercises the streaming loader. Both reject identical
    /// corruptions.
    pub attach: AttachMode,
}

impl Default for VerifyOptions {
    fn default() -> VerifyOptions {
        VerifyOptions {
            attach: AttachMode::Mmap,
        }
    }
}

/// One volume's verdict.
#[derive(Debug)]
pub struct VolumeVerdict {
    /// Volume id (manifest order).
    pub volume: usize,
    /// The volume's FASTA file name (from the manifest).
    pub fasta: String,
    /// The volume's index file name (from the manifest).
    pub index: String,
    /// `None` if the volume passed every check; the first failure
    /// otherwise.
    pub error: Option<DbError>,
}

impl VolumeVerdict {
    /// Whether the volume passed.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// Outcome of [`verify_db`]: a verdict for every volume the manifest
/// names.
#[derive(Debug)]
pub struct VerifyReport {
    /// Per-volume verdicts, in manifest order.
    pub volumes: Vec<VolumeVerdict>,
    /// Database-wide residue total from the manifest.
    pub total_residues: u64,
}

impl VerifyReport {
    /// Whether every volume passed.
    pub fn is_ok(&self) -> bool {
        self.volumes.iter().all(VolumeVerdict::is_ok)
    }

    /// The failing verdicts.
    pub fn failures(&self) -> impl Iterator<Item = &VolumeVerdict> {
        self.volumes.iter().filter(|v| !v.is_ok())
    }

    /// Process exit code for this report: `0` when clean, otherwise the
    /// [`DbError::exit_code`] of the first failing volume (volume
    /// failures are `3`).
    pub fn exit_code(&self) -> u8 {
        self.failures()
            .filter_map(|v| v.error.as_ref())
            .map(DbError::exit_code)
            .next()
            .unwrap_or(0)
    }
}

/// Verifies the database at `dir` through `io`, checking every volume.
///
/// Fails fast (with `Err`) only when there is nothing per-volume to
/// report: an unreadable or corrupt **manifest** ([`DbError::Io`] /
/// [`DbError::Manifest`] — exit codes 4 / 2). Every per-volume problem
/// lands in the returned report instead.
pub fn verify_db(
    dir: impl AsRef<Path>,
    io: Arc<dyn VolumeIo>,
    opts: &VerifyOptions,
) -> Result<VerifyReport, DbError> {
    // open_unchecked: manifest fully validated (including its trailing
    // checksum and residue-total consistency), volume files *not* probed
    // — a missing volume must become a verdict, not an open failure.
    let db = Database::open_unchecked(dir, io)?;
    let mut volumes = Vec::with_capacity(db.num_volumes());
    for v in 0..db.num_volumes() {
        let meta = db.volume(v);
        let error = verify_volume(&db, v, opts).err();
        volumes.push(VolumeVerdict {
            volume: v,
            fasta: meta.fasta.clone(),
            index: meta.index.clone(),
            error,
        });
    }
    Ok(VerifyReport {
        volumes,
        total_residues: db.total_residues(),
    })
}

/// Runs the full check chain on one volume.
fn verify_volume(db: &Database, v: usize, opts: &VerifyOptions) -> Result<(), DbError> {
    // attach_volume already checks: FASTA readable and parseable, bank
    // content hash vs manifest, residue count vs manifest, index file
    // structure (magic / version / checksum via the loader), index
    // w/stride vs manifest, index bank hash vs manifest, and the
    // bank ↔ index pairing invariants.
    let (prepared, _) = db.attach_volume(v, opts.attach)?;
    // One check the serving path skips (it never needs the count): the
    // manifest's per-volume sequence count.
    let meta = db.volume(v);
    let actual = prepared.bank().num_sequences() as u64;
    if actual != meta.sequences {
        return Err(DbError::Volume(crate::error::VolumeError {
            volume: v,
            path: db.dir().join(&meta.fasta),
            cause: VolumeCause::Mismatch(format!(
                "{actual} sequences, manifest records {}",
                meta.sequences
            )),
        }));
    }
    Ok(())
}
