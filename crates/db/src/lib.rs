//! # oris-db — the sharded subject database
//!
//! The paper's premise is *intensive* comparison: one subject collection
//! queried over and over. `oris-core`'s [`Session`](oris_core::Session)
//! amortizes the subject build within a process, and `oris_index::persist`
//! across processes — but both still treat "the subject" as a single bank
//! with a single in-memory index. Real search deployments shard instead:
//! build once into size-bounded **volumes**, memory-map many volumes
//! cheaply, search them all per query, and report statistics over the
//! whole collection. This crate is that database layer:
//!
//! * [`make_db`] — the `makedb` step: splits arbitrary FASTA input into
//!   volumes bounded by a residue budget. Each volume is a persisted
//!   bank (`vol<i>.fa`) plus its CSR index (`vol<i>.oidx`, the
//!   `oris_index::persist` format) — and the [`Manifest`] records, per
//!   volume, the residue count, sequence count and bank content hash,
//!   plus the index configuration and the **database-wide residue
//!   total**.
//! * [`Database`] — opens a database directory, validates the manifest,
//!   and attaches volumes on demand: by **mmap**
//!   ([`oris_index::AttachMode::Mmap`], the default — the postings and
//!   offsets sections are referenced zero-copy from the mapped file) or
//!   by heap copy (the fallback loader, equivalence-tested).
//! * [`DbSession`] — runs each query across **all** volumes with bounded
//!   memory: volumes are searched in sequence through a small window of
//!   attached sessions, each volume's working set dropped before the
//!   next outside the window, and every volume's records flow into one
//!   [`RecordSink`](oris_core::RecordSink) whose single boundary sort
//!   (under `M8Record::total_order`) merges them — so multi-volume
//!   output is **byte-identical** to a single-bank run over the
//!   concatenated input.
//!
//! E-values are computed over the **database-wide** effective search
//! space: [`DbSession`] sets
//! [`OrisConfig::subject_space`](oris_core::OrisConfig) to
//! `SubjectSpace::Database(total_residues)` from the manifest — not the
//! per-volume lengths, which would make an alignment's significance
//! depend on how `makedb` happened to shard the input.
//!
//! ## Failure model
//!
//! A database that serves many queries over a long lifetime meets
//! failures the batch pipeline never sees, and this crate makes each of
//! them typed, injectable and testable:
//!
//! * **Typed errors** — every failure is a [`DbError`] whose
//!   [`VolumeError`]/[`VolumeCause`] pinpoints the volume, the file and
//!   the cause (missing file, I/O error, FASTA parse failure, content
//!   hash mismatch, index corruption, metadata mismatch), with full
//!   `std::error::Error::source` chains down to the underlying
//!   `io::Error`. [`DbError::exit_code`] gives each class a stable CLI
//!   exit code, and [`DbError::is_transient`] is the retry policy's
//!   classifier.
//! * **Fault injection** — all file access goes through the [`VolumeIo`]
//!   trait: [`RealIo`] is the filesystem; [`FaultyIo`] deterministically
//!   fails the Nth open/read, truncates, bit-flips a chosen byte, or
//!   delays — which is how the test suite reaches *every* error path
//!   above without root or filesystem tricks.
//! * **Degraded mode** — [`OnVolumeError::SkipAndReport`] lets a session
//!   quarantine a failing volume (after bounded retry with backoff for
//!   transient faults) and complete queries over the survivors; each
//!   query's [`SearchReport`] records exactly what was searched, what
//!   was skipped, and the residue coverage fraction.
//! * **Deadlines** — [`DbOptions::deadline`] (or an explicit
//!   [`Deadline`](oris_core::Deadline) token via
//!   [`DbSession::run_query_deadline`]) bounds a query's wall-clock
//!   cost; expiry is a clean [`DbError::DeadlineExceeded`] with the
//!   caller's sink untouched and the session still usable.
//! * **Offline verification** — [`verify_db`] (the `verifydb` binary) is
//!   the fsck: manifest checksum, per-volume bank and index content
//!   hashes, and index structural integrity, reported per volume.
//!
//! ## Concurrency and the byte-identity contract
//!
//! [`DbOptions::volume_workers`] fans a query's volume searches across a
//! scoped worker pool. Volumes are independent by construction (each is
//! its own bank + index; an mmap-attached index is a read-only
//! `Section<u32>` view shared for free), so the parallel path changes
//! *when* work happens but never *what* is computed:
//!
//! * Each worker stages its volume's records in a private buffer; no
//!   record reaches the caller's sink until **every** volume completed.
//! * The staged buffers are merged **in ascending volume order** through
//!   the single existing `end_query` boundary, whose sort under
//!   `M8Record::total_order` is a strict total order — so `-m 8` output
//!   bytes are identical to the sequential walk for **any** worker
//!   count. The `db_equivalence` proptests quantify over
//!   `volume_workers ∈ {1, 2, 4}`.
//! * Attach (and therefore retry/quarantine accounting) stays
//!   sequential and ahead of the fan-out, so a failing volume produces
//!   the same [`SearchReport`] under any worker count; deadline checks
//!   run inside each worker's step-2 loops, expiry stops dispatch of
//!   remaining volumes, and an expired query leaves the sink untouched
//!   exactly as in the sequential path. `volume_workers > 1` requires an
//!   unbounded [`DbOptions::window`] (parallel search needs all volumes
//!   resident; a bounded window's memory guarantee would be a lie).
//!
//! [`DbOptions::result_cache_bytes`] adds a volume-level result cache
//! ([`ResultCache`]): completed per-volume searches are memoized under
//! `(query content hash, volume content hash, config fingerprint)` in a
//! bounded-memory LRU, so a repeated query costs ~0 volume searches.
//! Hits replay byte-identical records through the same boundary sort;
//! quarantined volumes are invalidated and never served from the cache;
//! deadline-aborted queries insert nothing. See the [`cache`] module
//! docs for the full contract.
//!
//! ```no_run
//! use oris_core::{CollectSink, OrisConfig};
//! use oris_db::{make_db, Database, DbOptions, DbSession, MakeDbOptions};
//!
//! let cfg = OrisConfig::default();
//! // Build once: shard subject.fa into ≤10 Mbp volumes under ./db.
//! let subject = oris_seqio::read_fasta_file("subject.fa").unwrap();
//! make_db([subject], "db", &MakeDbOptions::new(&cfg, 10_000_000)).unwrap();
//!
//! // Search many: attach via mmap, query across all volumes.
//! let db = Database::open("db").unwrap();
//! let mut session = DbSession::new(&db, &cfg, DbOptions::default()).unwrap();
//! let query = oris_seqio::read_fasta_file("query.fa").unwrap();
//! let mut sink = CollectSink::new();
//! let stats = session.run_query_into(&query, &mut sink).unwrap();
//! eprintln!("{} records over {} volumes", stats.step4.emitted, db.num_volumes());
//! ```

pub mod cache;
pub mod database;
pub mod error;
pub mod io;
pub mod makedb;
pub mod manifest;
pub mod session;
pub mod verify;

pub use cache::{CacheCounters, CacheKey, CachedVolume, ResultCache};
pub use database::{Database, DbError};
pub use error::{VolumeCause, VolumeError};
pub use io::{Fault, FaultRule, FaultyIo, RealIo, VolumeIo};
pub use makedb::{make_db, MakeDbOptions};
pub use manifest::{Manifest, VolumeMeta, MANIFEST_FILE};
pub use session::{DbBatchStats, DbOptions, DbSession, OnVolumeError, SearchReport, VolumeCost};
pub use verify::{verify_db, VerifyOptions, VerifyReport, VolumeVerdict};
