//! Genome-vs-genome comparison — the paper's large-bank workload
//! (section 3.3: H19 vs VRL and friends) plus its stress case, "genomes
//! having a large number of repeat sequences".
//!
//! Compares a chromosome-scale bank against a viral-division analogue,
//! with and without the low-complexity filter, showing how repeat-driven
//! hits dominate the unfiltered search and how step timings shift on
//! few-long-sequence inputs.
//!
//! ```text
//! cargo run --release --example genome_vs_genome
//! ```

use oris::core::FilterKind;
use oris::prelude::*;

fn main() {
    let scale = 0.2;
    println!("generating genome banks (scale {scale}) ...");
    let h19 = paper_banks(&["H19"], scale).remove(0).bank;
    let vrl = paper_banks(&["VRL"], scale).remove(0).bank;
    println!(
        "  H19: {} sequences, {:.2} Mbp | VRL: {} sequences, {:.2} Mbp",
        h19.num_sequences(),
        h19.mbp(),
        vrl.num_sequences(),
        vrl.mbp()
    );

    for (label, filter) in [
        ("filter off", FilterKind::None),
        ("entropy filter", FilterKind::Entropy),
    ] {
        let cfg = OrisConfig {
            filter,
            ..OrisConfig::default()
        };
        let r = compare_banks(&h19, &vrl, &cfg);
        let s = &r.stats;
        println!(
            "\n[{label}] {} HSPs -> {} alignments in {:.3} s \
             (index {:.3}s, step2 {:.3}s, step3 {:.3}s; masked {:.1}% / {:.1}%)",
            s.hsps,
            r.alignments.len(),
            s.total_secs(),
            s.index_secs,
            s.step2_secs,
            s.step3_secs,
            100.0 * s.masked_fraction1,
            100.0 * s.masked_fraction2,
        );
        // Repeat-family alignments cluster on the same subject sequences;
        // count distinct subject sequences hit.
        let mut subjects: Vec<&str> = r.alignments.iter().map(|a| a.sid.as_str()).collect();
        subjects.sort();
        subjects.dedup();
        println!(
            "  {} distinct viral sequences hit; strongest: {}",
            subjects.len(),
            r.alignments
                .first()
                .map(|a| a.to_string())
                .unwrap_or_else(|| "none".into())
        );
    }

    println!(
        "\nindex footprint: the paper's ~5 bytes/residue model gives {:.1} MB \
         for these two banks",
        5.0 * (h19.num_residues() + vrl.num_residues()) as f64 / 1e6
    );
}
