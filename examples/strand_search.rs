//! Complementary-strand search — the feature the paper announces for its
//! next release ("Currently, the SCORIS-N prototype doesn't perform
//! search on the complementary strand", section 3.3).
//!
//! Builds a subject bank whose homology sits on the minus strand, shows
//! that single-strand search (the paper's `-S 1` setting) misses it, and
//! that `both_strands` recovers it with BLAST-style coordinates
//! (`sstart > send` on minus-strand records).
//!
//! ```text
//! cargo run --release --example strand_search
//! ```

use oris::prelude::*;

fn revcomp(s: &str) -> String {
    s.chars()
        .rev()
        .map(|c| match c {
            'A' => 'T',
            'T' => 'A',
            'C' => 'G',
            'G' => 'C',
            other => other,
        })
        .collect()
}

fn main() {
    let gene = "ATGGCGTACGTTAGCCTAGGCTTAACGGTACCATTGGCAATTCGCGATACGTAGCTAGCA";
    let bank1 = parse_fasta(&format!(">probe\nTTGGCC{gene}AACCGG\n")).unwrap();
    // The subject carries the gene on the MINUS strand only.
    let bank2 = parse_fasta(&format!(
        ">genomic_region\nCCAATTGG{}TTTTCCCCGGGG\n",
        revcomp(gene)
    ))
    .unwrap();

    let mut cfg = OrisConfig::small(9);

    println!("single strand (the paper's -S 1):");
    let single = compare_banks(&bank1, &bank2, &cfg);
    println!("  {} alignment(s)", single.alignments.len());

    cfg.both_strands = true;
    println!("\nboth strands:");
    let both = compare_banks(&bank1, &bank2, &cfg);
    for a in &both.alignments {
        let strand = if a.sstart <= a.send { "+" } else { "-" };
        println!("  [{strand}] {a}");
    }
    assert!(single.alignments.is_empty());
    assert!(!both.alignments.is_empty());

    // Demonstrate the coordinate convention: reading the reported subject
    // range on the plus strand and reverse-complementing it reproduces
    // the aligned query region.
    let a = &both.alignments[0];
    let subj = bank2.sequence_string(0);
    let plus_slice = &subj[a.send - 1..a.sstart];
    println!(
        "\nsubject[{}..{}] revcomp = {}…  (matches the probe region)",
        a.send,
        a.sstart,
        &revcomp(plus_slice)[..24.min(plus_slice.len())]
    );
}
