//! Quickstart: compare two tiny FASTA banks with the ORIS algorithm.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! `compare_banks` is the single-shot entry point; for the paper's
//! *intensive* scenario — many query banks against one subject — see
//! `examples/prepared_session.rs`, which indexes the subject once and
//! amortizes it across the whole query stream.

use oris::prelude::*;

fn main() {
    // Two miniature banks sharing one homologous region (with a couple of
    // substitutions) — the kind of input the SCORIS-N prototype takes.
    let bank1 = parse_fasta(
        ">query_1 synthetic\n\
         TTGACCGTAATGGCGTACGTTAGCCTAGGCTTAACGGATCGATCCGGTAAGCTACCGGTA\n\
         >query_2 unrelated\n\
         ATATATATATGCGCGCGCGCATATATATATGCGCGCGCGC\n",
    )
    .expect("valid FASTA");
    let bank2 = parse_fasta(
        ">subject_1 homolog\n\
         CCGGAATTATGGCGTACGTTAGCCTAGGCTTAACGGATCGATCCGGTAAGCTTTAACCGG\n",
    )
    .expect("valid FASTA");

    // Small-input configuration: W = 8 seeds, permissive e-value.
    let cfg = OrisConfig::small(8);
    let result = compare_banks(&bank1, &bank2, &cfg);

    println!("# ORIS quickstart — BLAST -m 8 tabular output");
    println!("# qid\tsid\tpident\tlen\tmm\tgaps\tqs\tqe\tss\tse\tevalue\tbits");
    for aln in &result.alignments {
        println!("{aln}");
    }
    println!(
        "\n{} HSP(s) found, {} alignment(s) reported in {:.3} ms",
        result.stats.hsps,
        result.alignments.len(),
        result.stats.total_secs() * 1e3,
    );
    assert!(
        !result.alignments.is_empty(),
        "the planted homology must be found"
    );
}
