//! EST screening — the paper's headline workload: intensive bank-vs-bank
//! comparison of EST collections (section 3.3's EST1 vs EST2 row, scaled
//! down).
//!
//! Generates two EST bank analogues from the shared gene pool, runs the
//! ORIS engine with the paper's parameters (W = 11, e ≤ 1e-3, filter on)
//! and summarizes what a screening pipeline would consume: per-query best
//! hits, identity distribution and timing per step.
//!
//! ```text
//! cargo run --release --example est_screening
//! ```

use std::collections::HashMap;

use oris::prelude::*;

fn main() {
    let scale = 0.3;
    println!("generating EST banks (scale {scale}) ...");
    let b1 = paper_banks(&["EST1"], scale).remove(0).bank;
    let b2 = paper_banks(&["EST2"], scale).remove(0).bank;
    println!(
        "  EST1: {} sequences, {:.2} Mbp | EST2: {} sequences, {:.2} Mbp",
        b1.num_sequences(),
        b1.mbp(),
        b2.num_sequences(),
        b2.mbp()
    );

    let cfg = OrisConfig::default(); // the paper's W = 11, e = 1e-3
    let result = compare_banks(&b1, &b2, &cfg);
    let s = &result.stats;

    println!("\nper-step timing (paper Figure 1 structure):");
    println!("  step 1 (indexing) : {:>8.3} s", s.index_secs);
    println!(
        "  step 2 (hits)     : {:>8.3} s  ({} HSPs)",
        s.step2_secs, s.hsps
    );
    println!(
        "  step 3 (gapped)   : {:>8.3} s  ({} alignments)",
        s.step3_secs, s.raw_alignments
    );
    println!("  step 4 (display)  : {:>8.3} s", s.step4_secs);

    // Best hit per query — the screening product.
    let mut best: HashMap<&str, &oris::eval::M8Record> = HashMap::new();
    for a in &result.alignments {
        best.entry(a.qid.as_str())
            .and_modify(|cur| {
                if a.evalue < cur.evalue {
                    *cur = a;
                }
            })
            .or_insert(a);
    }
    println!(
        "\n{} of {} queries have at least one hit (e ≤ {:.0e})",
        best.len(),
        b1.num_sequences(),
        cfg.evalue_threshold
    );

    // Identity histogram of reported alignments.
    let mut histo = [0usize; 5]; // <80, 80-90, 90-95, 95-99, 99+
    for a in &result.alignments {
        let bin = match a.pident {
            p if p >= 99.0 => 4,
            p if p >= 95.0 => 3,
            p if p >= 90.0 => 2,
            p if p >= 80.0 => 1,
            _ => 0,
        };
        histo[bin] += 1;
    }
    println!(
        "\nidentity distribution of {} alignments:",
        result.alignments.len()
    );
    for (label, n) in ["<80%", "80-90%", "90-95%", "95-99%", "99%+"]
        .iter()
        .zip(histo)
    {
        println!("  {label:>7}: {n}");
    }

    if let Some(a) = result.alignments.first() {
        println!("\nstrongest alignment:\n  {a}");
    }
}
