//! Batch screening: many EST query banks against one prepared subject,
//! streamed through a sink.
//!
//! ```text
//! cargo run --release --example batch_screening
//! ```
//!
//! The paper's *intensive comparison* scenario at its fullest: one
//! subject bank is prepared once ([`Session`]), a stream of query banks
//! runs against it ([`Session::run_batch`]), and each query's records
//! leave through a [`StreamWriter`] the moment the query finishes —
//! peak memory holds one query's working set no matter how long the
//! batch is. The example screens six EST banks, prints the per-query
//! record counts from the returned [`BatchStats`], and verifies that the
//! streamed bytes equal what the collect-everything path would have
//! produced.

use oris::prelude::*;
use oris_eval::M8Writer;

fn main() {
    // One subject, prepared once; six query banks from the same simulated
    // EST gene pool (so every bank finds real homologies).
    let subject = paper_banks(&["EST2"], 0.08).remove(0).bank;
    let query_names = ["EST1", "EST3", "EST4", "EST5", "EST6", "EST7"];
    let queries: Vec<Bank> = query_names
        .iter()
        .map(|name| paper_banks(&[name], 0.04).remove(0).bank)
        .collect();
    let cfg = OrisConfig::default();

    let session = Session::new(&subject, &cfg).expect("valid configuration");

    // --- Streamed: records leave as each query finishes ----------------
    let mut sink = StreamWriter::new(Vec::new());
    let batch = session
        .run_batch(&queries, &mut sink)
        .expect("memory writer cannot fail");
    let streamed = sink.into_inner();

    println!(
        "# batch screening — {} queries, one prepared subject",
        batch.queries()
    );
    for (name, stats) in query_names.iter().zip(&batch.per_query) {
        println!(
            "{name}: {} records, {} HSPs, 1 query index build ({} total)",
            stats.step4.emitted, stats.hsps, stats.index_builds,
        );
    }
    println!(
        "\nsubject prepared once: {} build(s), {:.3} s — amortized over {} queries",
        batch.subject.builds,
        batch.subject.build_secs,
        batch.queries(),
    );
    println!(
        "{} records streamed, {} index builds total (subject once + one per query)",
        batch.total_records(),
        batch.total_index_builds(),
    );

    // --- Cross-check: the streamed bytes are the collected bytes -------
    let mut collected = Vec::new();
    let mut m8 = M8Writer::new(&mut collected);
    for q in &queries {
        for rec in &session.run(q).alignments {
            m8.write_record(rec).unwrap();
        }
    }
    assert_eq!(streamed, collected, "streamed output must match collected");
    println!("\nstreamed output verified byte-identical to the collected path");
}
