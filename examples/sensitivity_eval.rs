//! Sensitivity evaluation — the paper's section-3.4 methodology as a
//! runnable example: run both engines on the same bank pair, match their
//! `-m 8` outputs with the 80 %-overlap equivalence, and report
//! `SCORISmiss` / `BLASTmiss`.
//!
//! ```text
//! cargo run --release --example sensitivity_eval
//! ```

use oris::prelude::*;

fn main() {
    let scale = 0.3;
    println!("generating EST banks (scale {scale}) ...");
    let b1 = paper_banks(&["EST3"], scale).remove(0).bank;
    let b2 = paper_banks(&["EST4"], scale).remove(0).bank;

    let oris_cfg = OrisConfig::default();
    let blast_cfg = BlastConfig::matched(&oris_cfg);

    println!("running SCORIS-N (ORIS engine, entropy filter) ...");
    let r_oris = compare_banks(&b1, &b2, &oris_cfg);
    println!("running BLASTN-like baseline (dust filter) ...");
    let r_blast = blast_compare_banks(&b1, &b2, &blast_cfg);

    let rep = oris::eval::compare_outputs(&r_oris.alignments, &r_blast.alignments, 0.8);
    println!("\npaper section 3.4 metrics (80% overlap equivalence):");
    println!("  SCtotal    = {}", rep.a_total);
    println!("  BLtotal    = {}", rep.b_total);
    println!("  SCmiss     = {}", rep.a_miss);
    println!("  BLmiss     = {}", rep.b_miss);
    println!(
        "  SCORISmiss = {}",
        rep.a_miss_pct().map_or("-".into(), |p| format!("{p:.2} %"))
    );
    println!(
        "  BLASTmiss  = {}",
        rep.b_miss_pct().map_or("-".into(), |p| format!("{p:.2} %"))
    );

    // The paper observes missed alignments are predominantly borderline:
    // low score, e-value near the threshold. Check ours look the same.
    let missed_by_oris: Vec<_> = r_blast
        .alignments
        .iter()
        .filter(|b| {
            !r_oris
                .alignments
                .iter()
                .any(|a| oris::eval::equivalent(a, b, 0.8))
        })
        .collect();
    if !missed_by_oris.is_empty() {
        let mean_bits_missed: f64 =
            missed_by_oris.iter().map(|a| a.bitscore).sum::<f64>() / missed_by_oris.len() as f64;
        let mean_bits_all: f64 = r_blast.alignments.iter().map(|a| a.bitscore).sum::<f64>()
            / r_blast.alignments.len() as f64;
        println!(
            "\nmissed alignments are borderline: mean bit score {:.1} vs {:.1} overall",
            mean_bits_missed, mean_bits_all
        );
    } else {
        println!("\nno alignments missed by the ORIS engine on this pair");
    }
}
