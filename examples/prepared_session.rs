//! Build once, query many: the prepared-bank session workflow.
//!
//! ```text
//! cargo run --release --example prepared_session
//! ```
//!
//! The paper's scenario is *intensive* comparison — one subject bank, a
//! stream of query banks. A [`Session`] runs step 1 on the subject once;
//! each `run` then pays only its own query's preparation plus steps 2–4.
//! The example measures both ways of running the same workload and prints
//! the amortization.

use std::time::Instant;

use oris::prelude::*;

fn main() {
    // One subject bank and a stream of query banks (synthetic EST-style
    // data; deterministic, so both paths see identical inputs).
    let subject = paper_banks(&["EST2"], 0.08).remove(0).bank;
    let queries: Vec<Bank> = ["EST1", "EST3", "EST4", "EST5"]
        .iter()
        .map(|name| paper_banks(&[name], 0.04).remove(0).bank)
        .collect();
    let cfg = OrisConfig::default();

    // --- Naive: rebuild the subject index for every query --------------
    let t0 = Instant::now();
    let naive: Vec<OrisResult> = queries
        .iter()
        .map(|q| compare_banks(q, &subject, &cfg))
        .collect();
    let naive_secs = t0.elapsed().as_secs_f64();

    // --- Prepared: one session, subject indexed exactly once -----------
    let t0 = Instant::now();
    let session = Session::new(&subject, &cfg).expect("valid configuration");
    let prepared: Vec<OrisResult> = queries.iter().map(|q| session.run(q)).collect();
    let session_secs = t0.elapsed().as_secs_f64();

    println!("# prepared-bank session — build once, query many");
    for (i, (n, p)) in naive.iter().zip(&prepared).enumerate() {
        assert_eq!(n.alignments, p.alignments, "query {i} outputs must match");
        println!(
            "query {i}: {} alignments; naive rebuilt {} indexes, session built {}",
            p.alignments.len(),
            n.stats.index_builds,
            p.stats.index_builds,
        );
    }
    let subject_stats = session.subject_stats();
    println!(
        "\nsubject prepared once: {} build(s), {:.3} s, {} index bytes",
        subject_stats.builds, subject_stats.build_secs, subject_stats.index_bytes,
    );
    println!(
        "{} queries: naive {naive_secs:.3} s, session {session_secs:.3} s ({:.2}x)",
        queries.len(),
        naive_secs / session_secs,
    );
}
