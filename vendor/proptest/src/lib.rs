//! Minimal vendored subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this crate implements
//! the slice of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * strategies: string patterns of the form `"[CHARS]{m,n}"` (a character
//!   class with a repeat count — the only regex shape used here), integer
//!   ranges (`0u8..4`, `2usize..6`, …), and
//!   [`collection::vec`]`(strategy, len_range)`;
//! * a deterministic per-test RNG (FNV-hashed test name, overridable with
//!   the `PROPTEST_SEED` environment variable).
//!
//! There is **no shrinking**: a failing case panics with the full input
//! values printed, which is enough to reproduce (the RNG is deterministic)
//! and keeps the shim small.

/// Runner configuration (subset of proptest's `ProptestConfig`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

pub mod test_runner {
    //! Case RNG and failure type used by the generated test bodies.

    pub use crate::ProptestConfig as Config;

    /// A failed property case (message only; no shrinking).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Deterministic SplitMix64 stream for one test function.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from the test name (FNV-1a) xor `PROPTEST_SEED` if set.
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(v) = s.parse::<u64>() {
                    h ^= v;
                }
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[lo, hi]` (inclusive).
        #[inline]
        pub fn in_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
            debug_assert!(lo <= hi);
            let span = hi - lo + 1;
            if span == 0 {
                // full u64 range
                return self.next_u64();
            }
            lo + self.next_u64() % span
        }
    }
}

use test_runner::TestRng;

/// A value generator (subset of proptest's `Strategy`).
///
/// Implementors produce one random value per call; there is no shrinking.
pub trait Strategy {
    /// Generated value type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.in_range_u64(self.start as u64, self.end as u64 - 1) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_range_u64(*self.start() as u64, *self.end() as u64) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// String pattern strategy: a sequence of atoms, each a literal character
/// or a `[class]`, optionally followed by `{m}` or `{m,n}`.
///
/// This covers every pattern in the workspace's tests (`"[ACGT]{30,90}"`
/// and friends). Unsupported regex syntax panics loudly rather than
/// silently generating wrong data.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            // Parse one atom.
            let class: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed [ in pattern {self:?}"));
                    let cls = chars[i + 1..i + close].to_vec();
                    assert!(
                        !cls.is_empty() && !cls.contains(&'-') && !cls.contains(&'^'),
                        "unsupported char class in pattern {self:?}"
                    );
                    i += close + 1;
                    cls
                }
                '{' | '}' | ']' | '(' | ')' | '|' | '*' | '+' | '?' | '.' | '\\' => {
                    panic!(
                        "unsupported regex syntax {:?} in pattern {self:?}",
                        chars[i]
                    )
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // Parse an optional {m} / {m,n} quantifier.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {self:?}"));
                let body: String = chars[i + 1..i + close].iter().collect();
                i += close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("bad quantifier"),
                        n.trim().parse::<usize>().expect("bad quantifier"),
                    ),
                    None => {
                        let m = body.trim().parse::<usize>().expect("bad quantifier");
                        (m, m)
                    }
                }
            } else {
                (1, 1)
            };
            let count = rng.in_range_u64(lo as u64, hi as u64) as usize;
            for _ in 0..count {
                let k = rng.in_range_u64(0, class.len() as u64 - 1) as usize;
                out.push(class[k]);
            }
        }
        out
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Strategy producing `Vec`s of `elem` values with a length drawn from
    /// `len` (exclusive upper bound, like `proptest::collection::vec`).
    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi_exclusive: usize,
    }

    /// Length specifications accepted by [`vec()`]: an exact `usize` or a
    /// half-open `Range<usize>` (the shim's stand-in for `SizeRange`).
    pub trait IntoLenRange {
        /// `(lo, hi_exclusive)` bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoLenRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    impl IntoLenRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty length range");
            (self.start, self.end)
        }
    }

    /// Vector of values drawn from `elem`, with length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: impl IntoLenRange) -> VecStrategy<S> {
        let (lo, hi_exclusive) = len.bounds();
        VecStrategy {
            elem,
            lo,
            hi_exclusive,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.in_range_u64(self.lo as u64, self.hi_exclusive as u64 - 1) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The imports `use proptest::prelude::*` is expected to provide.

    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Property-test macro (subset of proptest's).
///
/// Supports an optional `#![proptest_config(expr)]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items. Each generated
/// test runs `config.cases` random cases and panics with the offending
/// inputs on the first failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __inputs = {
                        let mut s = ::std::string::String::new();
                        $(s.push_str(&::std::format!(
                            "  {} = {:?}\n", stringify!($arg), &$arg
                        ));)+
                        s
                    };
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __result {
                        ::std::panic!(
                            "property failed at case #{}: {}\ninputs:\n{}",
                            __case, e, __inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                ),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn string_pattern_shapes() {
        let mut rng = TestRng::for_test("string_pattern_shapes");
        for _ in 0..200 {
            let s = Strategy::generate(&"[ACGT]{3,7}", &mut rng);
            assert!((3..=7).contains(&s.len()), "{s}");
            assert!(s.chars().all(|c| "ACGT".contains(c)));
        }
        let exact = Strategy::generate(&"[AB]{4}", &mut rng);
        assert_eq!(exact.len(), 4);
        let lit = Strategy::generate(&"XY", &mut rng);
        assert_eq!(lit, "XY");
    }

    #[test]
    fn range_strategy_bounds() {
        let mut rng = TestRng::for_test("range_strategy_bounds");
        for _ in 0..200 {
            let v = Strategy::generate(&(2usize..6), &mut rng);
            assert!((2..6).contains(&v));
            let b = Strategy::generate(&(0u8..4), &mut rng);
            assert!(b < 4);
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut rng = TestRng::for_test("vec_strategy_lengths");
        for _ in 0..100 {
            let v = Strategy::generate(&crate::collection::vec("[AC]{1,3}", 1..4), &mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    // The macro itself, exercised end to end.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_asserts(s in "[ACGT]{0,10}", n in 1usize..5) {
            prop_assert!(s.len() <= 10);
            prop_assert_eq!(n.min(10), n);
        }
    }
}
