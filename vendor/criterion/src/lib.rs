//! Minimal vendored subset of the `criterion` API.
//!
//! The build environment has no crates.io access; this shim implements the
//! pieces the workspace's benches use — `criterion_group!`/`criterion_main!`,
//! benchmark groups, `bench_function`, `bench_with_input`, `Throughput`,
//! `sample_size` — with a simple adaptive timer instead of criterion's
//! statistical machinery.
//!
//! `--test` on the command line (as passed by `cargo bench -- --test`, the
//! mode CI uses) runs every benchmark body exactly once and prints nothing
//! but a pass line, so benches double as smoke tests. In normal mode each
//! benchmark is auto-calibrated to ~`50 ms` per sample and reported as
//! mean ± spread with optional throughput.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Input size in bytes per iteration.
    Bytes(u64),
    /// Logical elements per iteration.
    Elements(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Passed to benchmark closures; `iter` runs and times the body.
pub struct Bencher<'a> {
    test_mode: bool,
    sample_size: usize,
    /// Measured sample means (seconds per iteration), filled by `iter`.
    samples: &'a mut Vec<f64>,
}

impl Bencher<'_> {
    /// Runs the benchmark body repeatedly and records per-iteration time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Calibrate: how many iterations fit in ~50 ms?
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let iters =
            (Duration::from_millis(50).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t0.elapsed().as_secs_f64() / iters as f64;
            self.samples.push(dt);
        }
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn report(label: &str, samples: &[f64], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(0.0f64, f64::max);
    let thr = match throughput {
        Some(Throughput::Bytes(b)) => {
            format!("  {:>10.1} MiB/s", b as f64 / mean / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(e)) => format!("  {:>10.2} Melem/s", e as f64 / mean / 1e6),
        None => String::new(),
    };
    println!(
        "{label:<40} time: [{} {} {}]{}",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max),
        thr
    );
}

/// Top-level benchmark driver (subset of criterion's `Criterion`).
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            test_mode: false,
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Reads `--test` from the command line (`cargo bench -- --test`);
    /// every other flag cargo's bench harness passes is ignored.
    pub fn configure_from_args(mut self) -> Criterion {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            throughput: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(&id.to_string(), self.test_mode, self.sample_size, None, f);
        self
    }
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(
    label: &str,
    test_mode: bool,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut samples = Vec::new();
    let mut b = Bencher {
        test_mode,
        sample_size,
        samples: &mut samples,
    };
    f(&mut b);
    if test_mode {
        println!("{label:<40} ok (test mode)");
    } else {
        report(label, &samples, throughput);
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    test_mode: bool,
    sample_size: usize,
    throughput: Option<Throughput>,
    // Lifetime tied to the parent Criterion to mirror the real API shape.
    _marker: std::marker::PhantomData<&'c ()>,
}

// Separate impl block so the struct literal in `benchmark_group` stays
// readable despite the phantom field.
impl BenchmarkGroup<'_> {
    /// Sets samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates throughput for subsequent benchmarks in the group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks a closure under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.test_mode, self.sample_size, self.throughput, f);
        self
    }

    /// Benchmarks a closure with an explicit input under `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.test_mode,
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (prints nothing extra; parity with criterion).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_in_test_mode() {
        let mut c = Criterion {
            test_mode: true,
            sample_size: 10,
        };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3).throughput(Throughput::Bytes(100));
            g.bench_function("f", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("p", 42), &5usize, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        assert_eq!(ran, 1, "test mode runs the body exactly once");
    }

    #[test]
    fn timed_mode_collects_samples() {
        let mut samples = Vec::new();
        let mut b = Bencher {
            test_mode: false,
            sample_size: 3,
            samples: &mut samples,
        };
        b.iter(|| black_box(2 + 2));
        assert_eq!(samples.len(), 3);
        assert!(samples.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn id_formats_with_parameter() {
        assert_eq!(
            BenchmarkId::new("full_w11", "16kb").to_string(),
            "full_w11/16kb"
        );
    }
}
