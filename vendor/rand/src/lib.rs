//! Minimal vendored subset of the `rand 0.8` API.
//!
//! Provides exactly what `oris-simulate` uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], `gen::<f64>()`, `gen::<bool>()` and
//! `gen_range` over integer ranges. The generator is xoshiro256** seeded
//! through SplitMix64 — high-quality, deterministic, and stable across
//! platforms (bank simulation relies on seeds being reproducible).
//!
//! Note: streams differ from the real `rand` crate's `StdRng` (ChaCha12).
//! All simulated banks in this workspace are defined by *this* generator;
//! nothing depends on matching upstream rand's output.

/// Types that can be sampled uniformly from a generator's native output
/// (the shim's stand-in for rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Integer types uniform ranges can be sampled over (the shim's
/// `SampleUniform`). One blanket [`SampleRange`] impl per range shape keeps
/// type inference working the way real rand's does (`gen_range(0..2)` used
/// as a slice index infers `usize`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Widens to the sampling domain.
    fn to_u64(self) -> u64;
    /// Narrows back after sampling (value is guaranteed in range).
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn to_u64(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_u64(v: u64) -> $t {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i32, i64);

/// Ranges that can be sampled uniformly (the shim's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        T::from_u64(lo + rng.next_u64() % (hi - lo))
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "cannot sample empty range");
        let span = (hi - lo).wrapping_add(1);
        if span == 0 {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + rng.next_u64() % span)
    }
}

/// Subset of rand's `Rng` trait.
pub trait Rng {
    /// The generator's native 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of type `T` (uniform `[0,1)` for `f64`, fair coin for
    /// `bool`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// Subset of rand's `SeedableRng` trait.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let w = r.gen_range(2i64..=4);
            assert!((2..=4).contains(&w));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut r = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| r.gen::<bool>()).count();
        assert!((4000..6000).contains(&heads), "{heads}");
    }
}
