//! Minimal vendored subset of the `rayon` API.
//!
//! The build environment has no network access to crates.io, so this crate
//! provides the small slice of rayon the workspace actually uses, backed by
//! `std::thread::scope`:
//!
//! * [`join`] — two-way fork-join;
//! * [`scope`] / [`Scope::spawn`] — N-way scoped fork-join over **real OS
//!   threads** (one `std::thread` per spawn, joined when the scope ends).
//!   Spawned closures may borrow from the enclosing stack frame, exactly
//!   like `std::thread::scope`. This is the primitive `oris-db` uses to fan
//!   per-query volume searches across a worker pool: the caller spawns a
//!   small fixed number of dispatch loops that pull work items from a
//!   shared atomic cursor, so an early-exit signal (e.g. deadline expiry)
//!   stops *dispatching* remaining items rather than computing and
//!   discarding them;
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] — a *logical* pool: it
//!   sets the worker count observed by [`current_num_threads`] and used by
//!   parallel iterators for the duration of the closure (threads themselves
//!   are scoped per operation, not pooled);
//! * `into_par_iter()` / `par_iter()` / `map` / `map_init` / `collect` —
//!   eager parallel map over contiguous chunks, **order-preserving**: the
//!   output equals the sequential map regardless of worker count, which is
//!   the property the ORIS step-2/step-3 determinism tests rely on.
//!
//! Work is split into one contiguous chunk per worker. This is cruder than
//! rayon's work stealing, which is precisely why step 2 now partitions the
//! seed-code space by estimated work before handing ranges to the pool (see
//! `oris-core::step2`).
//!
//! Semantic deviations from real rayon, for anyone swapping the crates:
//!
//! * No global pool exists; [`ThreadPool`] is only a thread-local worker
//!   *count*, and `install` does not move the closure onto pool threads.
//! * [`scope`] spawns one OS thread per `Scope::spawn` call (real rayon
//!   queues tasks onto pool workers) — callers should spawn O(workers)
//!   dispatch loops, not O(items) tasks.
//! * [`Scope`] carries two lifetimes (`'scope`, `'env`) like
//!   `std::thread::Scope`; call sites that let inference pick the type
//!   compile unchanged against real rayon's single-lifetime `Scope`.
//! * A panicking spawned closure aborts the scope with a panic at the join
//!   point, matching rayon's propagate-first-panic behaviour closely
//!   enough for this workspace (which treats worker panics as fatal).

use std::cell::Cell;

thread_local! {
    /// Worker count installed by [`ThreadPool::install`] on this thread.
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel operations will use on this thread.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS.with(|c| c.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    let installed = INSTALLED_THREADS.with(|c| c.get());
    std::thread::scope(|s| {
        let hb = s.spawn(move || {
            INSTALLED_THREADS.with(|c| c.set(installed));
            b()
        });
        let ra = a();
        (ra, hb.join().expect("rayon::join worker panicked"))
    })
}

/// A scoped task spawner mirroring `rayon::Scope`, backed by
/// [`std::thread::Scope`]: every spawned closure runs on its own OS
/// thread and is joined before [`scope`] returns, so closures may borrow
/// anything that outlives the `scope` call.
///
/// Unlike real rayon there is no pool behind this — spawn a bounded
/// number of worker loops (each pulling work from a shared queue/cursor),
/// not one task per work item.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    installed: Option<usize>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns `body` on a new scoped thread. The closure receives the
    /// scope again (rayon's signature), so it can spawn further tasks.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let scope = Scope {
            inner: self.inner,
            installed: self.installed,
        };
        self.inner.spawn(move || {
            // Propagate the logical pool's worker count into the new
            // thread, matching `join`'s behaviour.
            INSTALLED_THREADS.with(|c| c.set(scope.installed));
            body(&scope)
        });
    }
}

/// Scoped N-way fork-join (the `rayon::scope` subset): runs `op` with a
/// [`Scope`] whose spawned tasks all complete before `scope` returns.
/// Tasks run on real OS threads and may borrow from the caller's frame.
pub fn scope<'env, OP, R>(op: OP) -> R
where
    OP: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let installed = INSTALLED_THREADS.with(|c| c.get());
    std::thread::scope(|s| {
        let scope = Scope {
            inner: s,
            installed,
        };
        op(&scope)
    })
}

/// Error building a thread pool (never produced by this shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker count (0 = automatic).
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the logical pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            }),
        })
    }
}

/// A logical thread pool: a worker count scoped to [`ThreadPool::install`].
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's worker count visible to
    /// [`current_num_threads`] and the parallel iterators.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = INSTALLED_THREADS.with(|c| c.replace(Some(self.num_threads)));
        let out = f();
        INSTALLED_THREADS.with(|c| c.set(prev));
        out
    }

    /// The configured worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Runs `f` over `items`, in parallel chunks, preserving input order.
fn run_chunked<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads();
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let chunk = n.div_ceil(threads);
    let mut slots: Vec<Vec<T>> = Vec::new();
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        slots.push(c);
    }
    let fref = &f;
    let parts: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = slots
            .into_iter()
            .map(|part| s.spawn(move || part.into_iter().map(fref).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(n);
    for p in parts {
        out.extend(p);
    }
    out
}

/// Eager parallel iterator over an owned item vector.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map, order-preserving.
    pub fn map<R, F>(self, f: F) -> MappedParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        MappedParIter {
            results: run_chunked(self.items, f),
        }
    }

    /// Parallel side-effect loop (rayon's `for_each` subset): runs `f`
    /// over every item and discards the results.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_chunked(self.items, f);
    }

    /// Parallel map with one per-worker scratch value built by `init`.
    ///
    /// `init` runs once per chunk (≈ once per worker), mirroring rayon's
    /// `map_init` contract that the scratch value is reused across items of
    /// the same worker.
    pub fn map_init<I, R, INIT, F>(self, init: INIT, f: F) -> MappedParIter<R>
    where
        R: Send,
        INIT: Fn() -> I + Sync,
        F: Fn(&mut I, T) -> R + Sync,
    {
        let threads = current_num_threads();
        if threads <= 1 || self.items.len() <= 1 {
            let mut scratch = init();
            return MappedParIter {
                results: self.items.into_iter().map(|t| f(&mut scratch, t)).collect(),
            };
        }
        let n = self.items.len();
        let chunk = n.div_ceil(threads);
        let mut slots: Vec<Vec<T>> = Vec::new();
        let mut it = self.items.into_iter();
        loop {
            let c: Vec<T> = it.by_ref().take(chunk).collect();
            if c.is_empty() {
                break;
            }
            slots.push(c);
        }
        let (iref, fref) = (&init, &f);
        let parts: Vec<Vec<R>> = std::thread::scope(|s| {
            let handles: Vec<_> = slots
                .into_iter()
                .map(|part| {
                    s.spawn(move || {
                        let mut scratch = iref();
                        part.into_iter()
                            .map(|t| fref(&mut scratch, t))
                            .collect::<Vec<R>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel worker panicked"))
                .collect()
        });
        let mut out = Vec::with_capacity(n);
        for p in parts {
            out.extend(p);
        }
        MappedParIter { results: out }
    }
}

/// Result of a parallel map; already materialized in input order.
pub struct MappedParIter<R> {
    results: Vec<R>,
}

impl<R> MappedParIter<R> {
    /// Collects into any `FromIterator` container, preserving order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        self.results.into_iter().collect()
    }
}

/// Conversion into an eager parallel iterator (subset of rayon's trait).
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u32> {
    type Item = u32;
    fn into_par_iter(self) -> ParIter<u32> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// `par_iter()` over a borrowed slice/vec (subset of rayon's ref trait).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;
    /// Parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The traits user code imports with `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        let nested = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        pool.install(|| {
            assert_eq!(nested.install(current_num_threads), 7);
            assert_eq!(current_num_threads(), 3);
        });
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn map_init_reuses_scratch_per_chunk() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let v: Vec<usize> = (0..100).collect();
        let out: Vec<usize> = pool.install(|| {
            v.into_par_iter()
                .map_init(Vec::<usize>::new, |scratch, x| {
                    scratch.push(x);
                    x + scratch.len() - scratch.len()
                })
                .collect()
        });
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn scope_joins_all_spawns_and_allows_borrows() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sum = AtomicUsize::new(0);
        let items: Vec<usize> = (1..=10).collect();
        scope(|s| {
            for _ in 0..3 {
                s.spawn(|_| {
                    // Worker loop over a shared cursor: the early-exit
                    // dispatch pattern oris-db uses.
                    static NEXT: AtomicUsize = AtomicUsize::new(0);
                    loop {
                        let i = NEXT.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        sum.fetch_add(items[i], Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 55);
    }

    #[test]
    fn scope_propagates_installed_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        pool.install(|| {
            scope(|s| {
                s.spawn(|_| {
                    assert_eq!(current_num_threads(), 5);
                });
            });
        });
    }

    #[test]
    fn scope_returns_op_result() {
        let r = scope(|_| 42);
        assert_eq!(r, 42);
    }

    #[test]
    fn par_iter_over_refs() {
        let v = vec![1u32, 2, 3];
        let out: Vec<u32> = v.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4]);
    }
}
