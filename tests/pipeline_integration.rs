//! Cross-crate integration tests: simulator → both engines → evaluation,
//! exercising the public API exactly as the experiment harness does.

use oris::prelude::*;
use oris_core::FilterKind;

fn small_est_pair() -> (Bank, Bank) {
    let b1 = paper_banks(&["EST1"], 0.05).remove(0).bank;
    let b2 = paper_banks(&["EST2"], 0.05).remove(0).bank;
    (b1, b2)
}

#[test]
fn engines_agree_on_synthetic_est_banks() {
    // The reproduction's core cross-check: at matched thresholds with the
    // same filter, the two engines must report equivalent alignment sets
    // (this is tighter than the paper's ~3 % mutual misses, which come
    // from the *differing* filters).
    let (b1, b2) = small_est_pair();
    let oris_cfg = OrisConfig {
        filter: FilterKind::Dust,
        ..OrisConfig::default()
    };
    let mut blast_cfg = BlastConfig::matched(&oris_cfg);
    blast_cfg.filter = FilterKind::Dust;

    let r_oris = compare_banks(&b1, &b2, &oris_cfg);
    let r_blast = blast_compare_banks(&b1, &b2, &blast_cfg);
    let rep = oris::eval::compare_outputs(&r_oris.alignments, &r_blast.alignments, 0.8);
    assert_eq!(rep.a_miss, 0, "{rep:?}");
    assert_eq!(rep.b_miss, 0, "{rep:?}");
    assert!(rep.a_total > 0, "expected some alignments: {rep:?}");
}

#[test]
fn differing_filters_produce_small_mutual_misses() {
    // With each engine's own filter (the paper's actual setup), misses
    // exist but stay a small fraction — the section-3.4 shape.
    let b1 = paper_banks(&["EST3"], 0.1).remove(0).bank;
    let b2 = paper_banks(&["EST4"], 0.1).remove(0).bank;
    let (r_oris, r_blast) = {
        let oris_cfg = OrisConfig::default();
        let blast_cfg = BlastConfig::matched(&oris_cfg);
        (
            compare_banks(&b1, &b2, &oris_cfg),
            blast_compare_banks(&b1, &b2, &blast_cfg),
        )
    };
    let rep = oris::eval::compare_outputs(&r_oris.alignments, &r_blast.alignments, 0.8);
    assert!(rep.a_total > 10, "too few alignments to compare: {rep:?}");
    let miss_a = rep.a_miss_pct().unwrap_or(0.0);
    let miss_b = rep.b_miss_pct().unwrap_or(0.0);
    assert!(
        miss_a < 25.0,
        "SCORISmiss too large: {miss_a:.1}% ({rep:?})"
    );
    assert!(miss_b < 25.0, "BLASTmiss too large: {miss_b:.1}% ({rep:?})");
}

#[test]
fn batched_baseline_matches_one_pass_records() {
    let (b1, b2) = small_est_pair();
    let oris_cfg = OrisConfig::default();
    let lean = BlastConfig::matched(&oris_cfg);
    let batched = BlastConfig::blastall_like(&oris_cfg);
    let a = blast_compare_banks(&b1, &b2, &lean);
    let b = blast_compare_banks(&b1, &b2, &batched);
    assert_eq!(a.alignments, b.alignments);
}

#[test]
fn oris_pipeline_deterministic_across_runs_and_threads() {
    let (b1, b2) = small_est_pair();
    let mut cfg = OrisConfig {
        threads: Some(1),
        ..OrisConfig::default()
    };
    let r1 = compare_banks(&b1, &b2, &cfg);
    cfg.threads = Some(4);
    let r4 = compare_banks(&b1, &b2, &cfg);
    cfg.threads = None;
    let rg = compare_banks(&b1, &b2, &cfg);
    assert_eq!(r1.alignments, r4.alignments);
    assert_eq!(r1.alignments, rg.alignments);
}

#[test]
fn fasta_roundtrip_preserves_results() {
    // Write banks to FASTA, read them back, compare: identical outputs.
    let (b1, b2) = small_est_pair();
    let dir = std::env::temp_dir().join("oris_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let p1 = dir.join("b1.fa");
    let p2 = dir.join("b2.fa");
    oris::seqio::fasta::write_fasta_file(&b1, &p1).unwrap();
    oris::seqio::fasta::write_fasta_file(&b2, &p2).unwrap();
    let rb1 = read_fasta_file(&p1).unwrap();
    let rb2 = read_fasta_file(&p2).unwrap();
    assert_eq!(b1, rb1);

    let cfg = OrisConfig::default();
    let direct = compare_banks(&b1, &b2, &cfg);
    let reloaded = compare_banks(&rb1, &rb2, &cfg);
    assert_eq!(direct.alignments, reloaded.alignments);
}

#[test]
fn m8_lines_parse_back() {
    let (b1, b2) = small_est_pair();
    let r = compare_banks(&b1, &b2, &OrisConfig::default());
    for a in &r.alignments {
        let line = a.to_string();
        let parsed = oris::eval::M8Record::parse(&line).expect("parseable m8 line");
        assert_eq!(parsed.qid, a.qid);
        assert_eq!(parsed.length, a.length);
        assert_eq!((parsed.qstart, parsed.qend), (a.qstart, a.qend));
    }
}

#[test]
fn evalue_threshold_is_respected() {
    let (b1, b2) = small_est_pair();
    let cfg = OrisConfig::default();
    let r = compare_banks(&b1, &b2, &cfg);
    for a in &r.alignments {
        assert!(
            a.evalue <= cfg.evalue_threshold,
            "record above threshold: {a}"
        );
    }
}

#[test]
fn asymmetric_mode_keeps_most_alignments() {
    // Section 3.4: asymmetric 10-nt indexing anchors all 11-nt seeds plus
    // ~50 % of 10-nt ones — alignment recall must not collapse.
    let b1 = paper_banks(&["EST1"], 0.1).remove(0).bank;
    let b2 = paper_banks(&["EST2"], 0.1).remove(0).bank;
    let plain = compare_banks(&b1, &b2, &OrisConfig::default());
    let asym = compare_banks(
        &b1,
        &b2,
        &OrisConfig {
            asymmetric: true,
            ..OrisConfig::default()
        },
    );
    assert!(
        asym.alignments.len() * 2 >= plain.alignments.len(),
        "asymmetric recall collapsed: {} vs {}",
        asym.alignments.len(),
        plain.alignments.len()
    );
}

#[test]
fn session_runs_many_queries_with_one_subject_build() {
    // The intensive-comparison contract: N ≥ 4 query banks against one
    // prepared subject build the subject index exactly once, each run
    // builds exactly one index (its query), and every result is
    // identical to the single-shot compare_banks on the same pair.
    let subject = paper_banks(&["EST2"], 0.05).remove(0).bank;
    let queries = vec![
        paper_banks(&["EST1"], 0.05).remove(0).bank,
        paper_banks(&["EST3"], 0.05).remove(0).bank,
        paper_banks(&["EST4"], 0.03).remove(0).bank,
        oris::simulate::random_bank(7, 40, 400, 0.5),
        paper_banks(&["EST5"], 0.03).remove(0).bank,
    ];
    let cfg = OrisConfig::default();
    let session = Session::new(&subject, &cfg).unwrap();
    assert_eq!(session.subject_stats().builds, 1);

    let mut total_alignments = 0;
    for q in &queries {
        let via_session = session.run(q);
        assert_eq!(via_session.stats.index_builds, 1, "query build only");
        let via_compare = compare_banks(q, &subject, &cfg);
        assert_eq!(via_session.alignments, via_compare.alignments);
        // compare_banks accounts for both builds it performed.
        assert_eq!(via_compare.stats.index_builds, 2);
        total_alignments += via_session.alignments.len();
    }
    assert!(total_alignments > 0, "EST pairs must produce alignments");
}

#[test]
fn session_both_strands_matches_compare_banks() {
    let subject = paper_banks(&["EST2"], 0.04).remove(0).bank;
    let query = paper_banks(&["EST1"], 0.04).remove(0).bank;
    let cfg = OrisConfig {
        both_strands: true,
        ..OrisConfig::default()
    };
    let session = Session::new(&subject, &cfg).unwrap();
    // One build per subject strand, never repeated across runs.
    assert_eq!(session.subject_stats().builds, 2);
    let r1 = session.run(&query);
    let r2 = session.run(&query);
    assert_eq!(r1.alignments, r2.alignments);
    assert_eq!(r1.stats.index_builds, 1);
    let direct = compare_banks(&query, &subject, &cfg);
    assert_eq!(r1.alignments, direct.alignments);
    // Single shot: 1 query build + 2 subject strand builds.
    assert_eq!(direct.stats.index_builds, 3);
}

#[test]
fn prepared_queries_skip_all_builds() {
    let subject = paper_banks(&["EST2"], 0.04).remove(0).bank;
    let query = paper_banks(&["EST1"], 0.04).remove(0).bank;
    let cfg = OrisConfig::default();
    let session = Session::new(&subject, &cfg).unwrap();
    let prep = PreparedBank::prepare(&query, cfg.filter, cfg.query_index_config());
    let r = session.run_prepared(&prep);
    assert_eq!(r.stats.index_builds, 0);
    assert_eq!(
        r.alignments,
        compare_banks(&query, &subject, &cfg).alignments
    );
}

#[test]
fn unrelated_banks_stay_silent() {
    // Negative control: independent random banks share no homology; at
    // e ≤ 1e-3 (essentially) nothing should be reported.
    let b1 = oris::simulate::random_bank(1, 60, 500, 0.5);
    let b2 = oris::simulate::random_bank(2, 60, 500, 0.5);
    let r = compare_banks(&b1, &b2, &OrisConfig::default());
    assert!(
        r.alignments.len() <= 1,
        "unexpected alignments between unrelated banks: {}",
        r.alignments.len()
    );
}
