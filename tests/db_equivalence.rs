//! Sharded-database ≡ single-bank, pinned at the workspace level.
//!
//! The database layer's central promise: searching a `makedb` database —
//! any volume count, either attach mode, any window, any
//! `volume_workers` count, result cache on or off — produces records
//! **byte-identical** to a single-bank session over the concatenated
//! input, with e-values computed over the same database-wide effective
//! search space. Random banks, volume budgets, strands and filters all
//! converge on the same `-m 8` bytes.

use oris_core::{CollectSink, FilterKind, OrisConfig, Session, StreamWriter};
use oris_db::{make_db, Database, DbOptions, DbSession, MakeDbOptions};
use oris_eval::{M8Record, M8Writer, SubjectSpace};
use oris_index::AttachMode;
use oris_seqio::{Bank, BankBuilder};
use proptest::prelude::*;
use std::path::PathBuf;

fn bank_from(seqs: &[String]) -> Bank {
    let mut b = BankBuilder::new();
    for (i, s) in seqs.iter().enumerate() {
        b.push_str(&format!("s{i}"), s).unwrap();
    }
    b.finish()
}

/// Renders records the way `StreamWriter` does, for byte comparisons.
fn render(records: &[M8Record]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut w = M8Writer::new(&mut out);
    for r in records {
        w.write_record(r).unwrap();
    }
    out
}

/// A unique scratch directory (proptest shrinking reruns cases, so a
/// per-process counter keeps every build in a fresh directory).
fn scratch() -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir()
        .join("oris_db_equivalence")
        .join(format!(
            "{}_{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// make_db over random banks and volume budgets, searched with both
    /// attach modes and window sizes, equals a single-bank session over
    /// the concatenated input — same records, same bytes through a
    /// StreamWriter.
    #[test]
    fn db_search_equals_concatenated_bank(
        seqs in proptest::collection::vec("[ACGT]{30,80}", 2..6),
        flank in "[ACGT]{5,20}",
        w in 5usize..8,
        volume_budget in 40usize..400,
        flags in 0u8..8,
    ) {
        let (both_strands, masked, tiny_window) =
            (flags & 1 != 0, flags & 2 != 0, flags & 4 != 0);
        let subject = bank_from(&seqs);
        let total = subject.num_residues() as u64;
        // Queries embed subject sequences (guaranteed homology) plus a
        // flank-only decoy; masked mode appends a poly-A run so the
        // entropy filter fires on both sides.
        let q_seqs: Vec<String> = seqs
            .iter()
            .map(|s| {
                if masked {
                    format!("{flank}{s}{}", "A".repeat(40))
                } else {
                    format!("{flank}{s}")
                }
            })
            .chain([flank.clone()])
            .collect();
        let query = bank_from(&q_seqs);

        let cfg = OrisConfig {
            both_strands,
            filter: if masked { FilterKind::Entropy } else { FilterKind::None },
            ..OrisConfig::small(w)
        };

        // Shard under a random volume budget...
        let dir = scratch();
        let manifest = make_db(
            [subject.clone()],
            &dir,
            &MakeDbOptions::new(&cfg, volume_budget),
        )
        .unwrap();
        prop_assert_eq!(manifest.total_residues, total);
        let db = Database::open(&dir).unwrap();

        // ...and the single-bank reference under the same database-wide
        // e-value space.
        let ref_cfg = OrisConfig {
            subject_space: SubjectSpace::Database(total),
            ..cfg
        };
        let reference = Session::new(&subject, &ref_cfg).unwrap();
        let expected = reference.run(&query);
        let expected_bytes = render(&expected.alignments);

        for attach in [AttachMode::Mmap, AttachMode::HeapCopy] {
            for workers in [1usize, 2, 4] {
                for cache_bytes in [0usize, 1 << 20] {
                    // Parallel fan-out requires every volume resident, so
                    // the bounded-window axis only composes with the
                    // sequential walk.
                    let window = if tiny_window && workers == 1 { 1 } else { 0 };
                    let opts = DbOptions {
                        attach,
                        window,
                        volume_workers: workers,
                        result_cache_bytes: cache_bytes,
                        ..DbOptions::default()
                    };
                    let mut session = DbSession::new(&db, &cfg, opts).unwrap();

                    if workers == 1 && cache_bytes == 0 {
                        // Collected records agree...
                        let collected = session.run_query(&query).unwrap();
                        prop_assert_eq!(&collected.alignments, &expected.alignments);
                    }

                    // ...and streamed bytes agree (the sink's single
                    // boundary sort really does merge the volumes) — for
                    // any worker count, cache on or off.
                    let mut stream = StreamWriter::new(Vec::new());
                    session.run_query_into(&query, &mut stream).unwrap();
                    prop_assert_eq!(&stream.into_inner(), &expected_bytes);

                    if cache_bytes > 0 {
                        // The repeat is served from the cache and must
                        // replay the exact same bytes.
                        let mut stream = StreamWriter::new(Vec::new());
                        let (_, report) =
                            session.run_query_reported(&query, &mut stream).unwrap();
                        prop_assert!(!report.cache_hits.is_empty());
                        prop_assert_eq!(&stream.into_inner(), &expected_bytes);
                    }
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Sharding granularity cannot leak into the output: the same
    /// collection built at two different volume budgets reports identical
    /// records (e-values included) for the same query.
    #[test]
    fn volume_count_is_invisible(
        seqs in proptest::collection::vec("[ACGT]{30,60}", 2..5),
        w in 5usize..8,
        budget_a in 35usize..120,
        budget_b in 150usize..600,
    ) {
        let subject = bank_from(&seqs);
        let query = bank_from(&seqs[..1]);
        let cfg = OrisConfig::small(w);

        let run_against = |budget: usize| {
            let dir = scratch();
            make_db([subject.clone()], &dir, &MakeDbOptions::new(&cfg, budget)).unwrap();
            let db = Database::open(&dir).unwrap();
            let mut session = DbSession::new(&db, &cfg, DbOptions::default()).unwrap();
            let mut sink = CollectSink::new();
            session.run_query_into(&query, &mut sink).unwrap();
            std::fs::remove_dir_all(&dir).ok();
            (db.num_volumes(), sink.into_records())
        };
        let (va, ra) = run_against(budget_a);
        let (vb, rb) = run_against(budget_b);
        prop_assert!(!ra.is_empty(), "self-hit query must produce records");
        // Different budgets usually mean different volume counts; either
        // way the records must agree.
        prop_assert!(va >= vb);
        prop_assert_eq!(ra, rb);
    }

    /// Degraded mode cannot invent, drop or re-price surviving records:
    /// corrupt one random volume, search under SkipAndReport, and the
    /// output is byte-identical to a database built from only the
    /// surviving sequences — priced against the FULL residue total.
    #[test]
    fn degraded_search_equals_surviving_volumes(
        seqs in proptest::collection::vec("[ACGT]{30,80}", 3..6),
        w in 5usize..8,
        bad_sel in 0usize..64,
    ) {
        use oris_db::{Fault, FaultRule, FaultyIo, OnVolumeError};
        use std::sync::Arc;

        let subject = bank_from(&seqs);
        let total = subject.num_residues() as u64;
        let query = bank_from(&seqs);
        let cfg = OrisConfig::small(w);
        let budget = (subject.num_residues() / 3).max(30);

        let dir = scratch();
        let manifest = make_db([subject], &dir, &MakeDbOptions::new(&cfg, budget)).unwrap();
        let nv = manifest.volumes.len();
        // budget ≤ total/3 means the collection can never fit one volume.
        prop_assert!(nv >= 2);
        let bad = bad_sel % nv;

        // Degraded runs: volume `bad`'s index has a flipped magic byte.
        // The quarantine decision, the report and the surviving bytes
        // must be identical whatever the worker count, cache on or off
        // (a failed volume's entries are invalidated, never served).
        let mut degraded: Vec<(CollectSink, oris_db::SearchReport)> = Vec::new();
        for (workers, cache_bytes) in [(1usize, 0usize), (2, 0), (4, 1 << 20)] {
            let io = FaultyIo::with_rules([FaultRule::always(
                &manifest.volumes[bad].index,
                Fault::FlipByte { offset: 0, mask: 0xFF },
            )]);
            let db = Database::open_with_io(&dir, Arc::new(io)).unwrap();
            let opts = DbOptions {
                on_volume_error: OnVolumeError::SkipAndReport,
                volume_workers: workers,
                result_cache_bytes: cache_bytes,
                ..DbOptions::default()
            };
            let mut session = DbSession::new(&db, &cfg, opts).unwrap();
            let mut sink = CollectSink::new();
            let (_, report) = session.run_query_reported(&query, &mut sink).unwrap();
            prop_assert_eq!(&report.skipped, &vec![bad]);
            prop_assert_eq!(report.residues_searched, total - manifest.volumes[bad].residues);
            degraded.push((sink, report));
        }
        let (sink, report) = degraded.remove(0);
        for (other_sink, other_report) in &degraded {
            prop_assert_eq!(render(sink.records()), render(other_sink.records()));
            prop_assert_eq!(&report.searched, &other_report.searched);
            prop_assert_eq!(&report.skipped, &other_report.skipped);
            prop_assert_eq!(report.retries, other_report.retries);
        }

        // Reference: only the surviving sequences (volumes never split a
        // sequence, so manifest sequence counts give the partition), with
        // the e-value space pinned to the full total.
        let mut starts = vec![0u64];
        for v in &manifest.volumes {
            starts.push(starts.last().unwrap() + v.sequences);
        }
        let ref_cfg = OrisConfig {
            subject_space: SubjectSpace::Database(total),
            ..cfg
        };
        // The surviving bank must keep the ORIGINAL sequence names so
        // records compare byte-for-byte.
        let mut b = BankBuilder::new();
        for (i, s) in seqs.iter().enumerate() {
            let i64 = i as u64;
            if !(starts[bad]..starts[bad + 1]).contains(&i64) {
                b.push_str(&format!("s{i}"), s).unwrap();
            }
        }
        let surviving_bank = b.finish();
        let ref_session = Session::new(&surviving_bank, &ref_cfg).unwrap();
        let expected = ref_session.run(&query);
        prop_assert_eq!(render(sink.records()), render(&expected.alignments));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The occurrence-index backend is invisible in the output: sessions
    /// and whole databases built under `Dense`, `Sparse` and `Auto`
    /// produce byte-identical `-m 8` streams for random banks, strands,
    /// filters and both attach modes. (The backend is a space/time trade
    /// inside `oris-index`; nothing downstream may observe it.)
    #[test]
    fn index_backend_is_invisible_in_m8_output(
        seqs in proptest::collection::vec("[ACGT]{30,80}", 2..6),
        flank in "[ACGT]{5,20}",
        w in 5usize..8,
        volume_budget in 40usize..400,
        flags in 0u8..4,
    ) {
        use oris_index::IndexBackend;
        let (both_strands, masked) = (flags & 1 != 0, flags & 2 != 0);
        let subject = bank_from(&seqs);
        let total = subject.num_residues() as u64;
        let q_seqs: Vec<String> = seqs
            .iter()
            .map(|s| format!("{flank}{s}"))
            .chain([format!("{flank}{}", "A".repeat(30))])
            .collect();
        let query = bank_from(&q_seqs);
        let cfg_with = |backend| OrisConfig {
            both_strands,
            filter: if masked { FilterKind::Entropy } else { FilterKind::None },
            index_backend: backend,
            ..OrisConfig::small(w)
        };

        // Session level: all three backends, same rendered bytes.
        let session_bytes = |backend| {
            let cfg = OrisConfig {
                subject_space: SubjectSpace::Database(total),
                ..cfg_with(backend)
            };
            let session = Session::new(&subject, &cfg).unwrap();
            render(&session.run(&query).alignments)
        };
        let expected = session_bytes(IndexBackend::Dense);
        prop_assert_eq!(&session_bytes(IndexBackend::Sparse), &expected);
        prop_assert_eq!(&session_bytes(IndexBackend::Auto), &expected);

        // Database level: a dense-built and a sparse-built database give
        // the same bytes in both attach modes — and a sparse-built
        // database accepts a dense-configured search session (the
        // backend is never a compatibility axis).
        for backend in [IndexBackend::Dense, IndexBackend::Sparse] {
            let cfg = cfg_with(backend);
            let dir = scratch();
            make_db([subject.clone()], &dir, &MakeDbOptions::new(&cfg, volume_budget)).unwrap();
            let db = Database::open(&dir).unwrap();
            for attach in [AttachMode::Mmap, AttachMode::HeapCopy] {
                let search_cfg = cfg_with(IndexBackend::Auto);
                let mut session = DbSession::new(
                    &db,
                    &search_cfg,
                    DbOptions { attach, ..DbOptions::default() },
                ).unwrap();
                let mut stream = StreamWriter::new(Vec::new());
                session.run_query_into(&query, &mut stream).unwrap();
                prop_assert_eq!(&stream.into_inner(), &expected);
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    /// An armed (deadline + SkipAndReport through a rule-less injector)
    /// session with no faults is byte-identical to the plain path — the
    /// failure machinery never changes what is computed.
    #[test]
    fn armed_no_fault_session_is_byte_identical(
        seqs in proptest::collection::vec("[ACGT]{30,60}", 2..5),
        w in 5usize..8,
        budget in 40usize..300,
    ) {
        use oris_db::{FaultyIo, OnVolumeError};
        use std::sync::Arc;
        use std::time::Duration;

        let subject = bank_from(&seqs);
        let query = bank_from(&seqs[..1]);
        let cfg = OrisConfig::small(w);
        let dir = scratch();
        make_db([subject], &dir, &MakeDbOptions::new(&cfg, budget)).unwrap();

        let plain = {
            let db = Database::open(&dir).unwrap();
            let mut session = DbSession::new(&db, &cfg, DbOptions::default()).unwrap();
            let mut sink = CollectSink::new();
            session.run_query_into(&query, &mut sink).unwrap();
            sink.into_records()
        };
        let armed = {
            let db = Database::open_with_io(&dir, Arc::new(FaultyIo::new())).unwrap();
            let opts = DbOptions {
                on_volume_error: OnVolumeError::SkipAndReport,
                deadline: Some(Duration::from_secs(3600)),
                ..DbOptions::default()
            };
            let mut session = DbSession::new(&db, &cfg, opts).unwrap();
            let mut sink = CollectSink::new();
            let (_, report) = session.run_query_reported(&query, &mut sink).unwrap();
            prop_assert!(report.is_complete());
            prop_assert_eq!(report.coverage(), 1.0);
            sink.into_records()
        };
        prop_assert_eq!(render(&plain), render(&armed));
        std::fs::remove_dir_all(&dir).ok();
    }
}
