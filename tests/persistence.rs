//! Cross-crate persistence tests: an index that travels through the
//! on-disk format must be *behaviourally* identical to the in-memory
//! build — not just equal arrays, but byte-identical HSPs out of step 2
//! and identical final records out of the whole pipeline.

use oris::prelude::*;
use oris_core::FilterKind;
use oris_index::persist::{read_index, read_index_file, write_index, PersistError};
use oris_index::{BankIndex, IndexMeta};
use oris_seqio::BankBuilder;
use proptest::prelude::*;

fn bank_from(seqs: &[String]) -> Bank {
    let mut b = BankBuilder::new();
    for (i, s) in seqs.iter().enumerate() {
        b.push_str(&format!("s{i}"), s).unwrap();
    }
    b.finish()
}

fn roundtrip(idx: &BankIndex) -> BankIndex {
    let mut bytes = Vec::new();
    write_index(&mut bytes, idx, &IndexMeta::default()).unwrap();
    read_index(&mut bytes.as_slice()).unwrap().0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Serialize → deserialize, then run step 2 with the loaded indexes:
    /// the HSP vectors (order included) and `Step2Stats` are identical to
    /// the fresh-build run, for random banks, word lengths, strides and
    /// masks — including the guard auto-selection driven by the persisted
    /// `is_fully_indexed` provenance.
    #[test]
    fn loaded_indexes_produce_identical_hsps(
        seqs1 in proptest::collection::vec("[ACGTN]{20,80}", 1..3),
        seqs2 in proptest::collection::vec("[ACGTN]{20,80}", 1..3),
        core in "[ACGT]{20,40}",
        w in 4usize..7,
        stride in 1usize..3,
        mask_mod in 1usize..7,
    ) {
        // Plant a shared core so HSPs actually exist.
        let mut v1 = seqs1.clone();
        let mut v2 = seqs2.clone();
        v1[0] = format!("{}{core}", &v1[0][..8]);
        v2[0] = format!("{core}{}", &v2[0][..12]);
        let b1 = bank_from(&v1);
        let b2 = bank_from(&v2);

        let cfg = OrisConfig {
            w,
            min_hsp_score: w as i32,
            ..OrisConfig::small(w)
        };
        let masked = |p: usize| mask_mod > 1 && p.is_multiple_of(mask_mod);
        let i1 = oris::index::BankIndex::build_filtered(
            &b1, IndexConfig::full(w), masked,
        );
        let i2 = oris::index::BankIndex::build(&b2, IndexConfig { stride, ..IndexConfig::full(w) });

        let l1 = roundtrip(&i1);
        let l2 = roundtrip(&i2);
        prop_assert_eq!(l1.is_fully_indexed(), i1.is_fully_indexed());
        prop_assert_eq!(l2.is_fully_indexed(), i2.is_fully_indexed());
        prop_assert_eq!(l1.stats(), i1.stats());
        prop_assert_eq!(l2.stats(), i2.stats());
        for code in 0..i1.coder().num_seeds() as u32 {
            prop_assert_eq!(l1.occurrences(code), i1.occurrences(code));
            prop_assert_eq!(l2.occurrences(code), i2.occurrences(code));
        }

        let fresh = oris::core::step2::find_hsps(&b1, &i1, &b2, &i2, &cfg);
        let loaded = oris::core::step2::find_hsps(&b1, &l1, &b2, &l2, &cfg);
        prop_assert_eq!(fresh, loaded);
    }
}

#[test]
fn loaded_subject_runs_whole_pipeline_identically() {
    // The EST-scale end-to-end check: persist the subject index, reload
    // it, run the full session — identical records to the fresh build.
    let b1 = paper_banks(&["EST1"], 0.05).remove(0).bank;
    let b2 = paper_banks(&["EST2"], 0.05).remove(0).bank;
    let cfg = OrisConfig::default();

    let fresh = PreparedBank::prepare(&b2, cfg.filter, cfg.subject_index_config());
    let mut bytes = Vec::new();
    write_index(
        &mut bytes,
        fresh.index(),
        &IndexMeta {
            masked_fraction: fresh.stats().masked_fraction,
            filter_code: cfg.filter.code(),
            bank_hash: oris_index::persist::fnv1a(b2.data()),
        },
    )
    .unwrap();
    let (idx, meta) = read_index(&mut bytes.as_slice()).unwrap();
    let prepared = PreparedBank::from_index(&b2, idx, &meta).unwrap();

    let via_loaded = Session::with_subject(prepared, &cfg).unwrap().run(&b1);
    let via_compare = compare_banks(&b1, &b2, &cfg);
    assert_eq!(via_loaded.alignments, via_compare.alignments);
    assert!(!via_loaded.alignments.is_empty());
}

#[test]
fn corrupt_and_truncated_files_error_never_panic() {
    let b = paper_banks(&["EST1"], 0.02).remove(0).bank;
    let idx = oris::index::BankIndex::build(&b, IndexConfig::full(8));
    let mut bytes = Vec::new();
    write_index(&mut bytes, &idx, &IndexMeta::default()).unwrap();

    // Truncations at a spread of prefix lengths across the whole file.
    for frac in [0usize, 1, 2, 5, 10, 50, 90, 99] {
        let cut = bytes.len() * frac / 100;
        assert!(
            read_index(&mut &bytes[..cut]).is_err(),
            "prefix of {cut} bytes parsed"
        );
    }

    // A flipped byte in every header field errors — via a field check
    // (magic, version, w out of range, stride=0, reserved flags, count
    // mismatches) or, where the value is unconstrained (bank_hash), via
    // the trailing whole-stream checksum.
    for (pos, val) in [
        (0usize, 0x58u8), // magic
        (8, 0x02),        // version
        (12, 0x0f),       // w out of range
        (16, 0x00),       // stride → 0
        (20, 0x80),       // reserved flag bit
        (24, 0xff),       // bank_len inflated → bit-set word count mismatch
        (44, 0x13),       // bank_hash → checksum mismatch
        (52, 0x13),       // num_offsets mismatch
    ] {
        let mut t = bytes.clone();
        if t[pos] == val {
            continue;
        }
        t[pos] = val;
        assert!(read_index(&mut t.as_slice()).is_err(), "byte {pos}");
    }
}

#[test]
fn wrong_version_reports_unsupported() {
    let b = bank_from(&["ACGTACGTACGTTTGGCCAA".to_string()]);
    let idx = oris::index::BankIndex::build(&b, IndexConfig::full(4));
    let mut bytes = Vec::new();
    write_index(&mut bytes, &idx, &IndexMeta::default()).unwrap();
    bytes[8] = 7; // version field
    match read_index(&mut bytes.as_slice()) {
        Err(PersistError::UnsupportedVersion(7)) => {}
        other => panic!("expected UnsupportedVersion(7), got {other:?}"),
    }
}

#[test]
fn file_level_roundtrip_via_tempdir() {
    let b = bank_from(&["ACGTACGTTTGGCCAAACGTACGT".to_string()]);
    let idx = oris::index::BankIndex::build(&b, IndexConfig::full(5));
    let dir = std::env::temp_dir().join("oris_persistence_it");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("it.oidx");
    let meta = IndexMeta {
        masked_fraction: 0.125,
        filter_code: FilterKind::Dust.code(),
        bank_hash: 0xfeed_beef,
    };
    oris_index::write_index_file(&path, &idx, &meta).unwrap();
    let (loaded, lmeta) = read_index_file(&path).unwrap();
    assert_eq!(lmeta, meta);
    assert_eq!(loaded.dense_offsets(), idx.dense_offsets());
    assert_eq!(loaded.positions(), idx.positions());
    assert_eq!(
        FilterKind::from_code(lmeta.filter_code),
        Some(FilterKind::Dust)
    );
}
