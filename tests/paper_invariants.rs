//! Property-based tests of the paper's central claims, spanning crates.

use oris::prelude::*;
use oris_align::{extend_hit, ExtensionOutcome, OrderGuard, UngappedParams};
use oris_index::IndexConfig;
use oris_seqio::BankBuilder;
use proptest::prelude::*;

fn bank_from(seqs: &[String]) -> Bank {
    let mut b = BankBuilder::new();
    for (i, s) in seqs.iter().enumerate() {
        b.push_str(&format!("s{i}"), s).unwrap();
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// THE paper invariant (section 2.2): with the ordered-seed rule,
    /// every HSP is generated exactly once, and the set of HSPs equals
    /// the deduplicated set produced by unguarded extension of every hit.
    #[test]
    fn ordered_rule_generates_each_hsp_exactly_once(
        seqs1 in proptest::collection::vec("[ACGT]{30,90}", 1..3),
        seqs2 in proptest::collection::vec("[ACGT]{30,90}", 1..3),
        core in "[ACGT]{25,50}",
        w in 5usize..8,
    ) {
        // Plant the shared core into both banks so real HSPs exist.
        let mut v1 = seqs1.clone();
        let mut v2 = seqs2.clone();
        v1[0] = format!("{}{core}{}", &v1[0][..10], &v1[0][10..]);
        v2[0] = format!("{}{core}", &v2[0][..15]);
        let b1 = bank_from(&v1);
        let b2 = bank_from(&v2);

        let cfg = oris::core::OrisConfig {
            w,
            // min_hsp_score is inclusive (keep score ≥ S1). One above the
            // bare-seed score: an HSP of score exactly W contains only its
            // own seed, and under a *saturating* xdrop the walk (which
            // carries the abort rule far beyond the final extent) may
            // legitimately reassign it to a smaller-code seed whose own
            // maximal extension does not cover it — so bare seeds sit
            // outside the exactly-once ⇔ brute-dedup equivalence this
            // test pins.
            min_hsp_score: w as i32 + 1,
            // saturating xdrop: extension extents become path-independent
            xdrop_ungapped: 10_000,
            ..oris::core::OrisConfig::small(w)
        };
        let i1 = BankIndex::build(&b1, IndexConfig::full(w));
        let i2 = BankIndex::build(&b2, IndexConfig::full(w));

        // Ordered generation.
        let (ordered, _) = oris::core::step2::find_hsps(&b1, &i1, &b2, &i2, &cfg);

        // Brute force: extend every hit unguarded, dedup by extent.
        let params = UngappedParams {
            w,
            xdrop: cfg.xdrop_ungapped,
            scheme: cfg.scheme,
            max_span: usize::MAX / 4,
        };
        let coder = i1.coder();
        let mut brute = std::collections::HashSet::new();
        for code in 0..coder.num_seeds() as u32 {
            for &a in i1.occurrences(code) {
                for &b in i2.occurrences(code) {
                    if let ExtensionOutcome::Hsp { score, left, right } = extend_hit(
                        b1.data(), b2.data(), a as usize, b as usize,
                        code, coder, &params, OrderGuard::None,
                    ) {
                        // `>=`: min_hsp_score is the minimum score to keep
                        // (matches step 2's corrected threshold).
                        if score >= cfg.min_hsp_score {
                            brute.insert((a - left as u32, b - left as u32,
                                          left as u32 + w as u32 + right as u32));
                        }
                    }
                }
            }
        }

        // Exactly once: no duplicates in the ordered output.
        let mut seen = std::collections::HashSet::new();
        for h in &ordered {
            prop_assert!(seen.insert((h.start1, h.start2, h.len)),
                "duplicate HSP {h:?}");
        }
        // Same set as brute force.
        prop_assert_eq!(seen, brute);
    }

    /// Planted homologies are found end-to-end whenever they contain a
    /// clean seed, and the reported alignment covers most of the core.
    #[test]
    fn planted_homology_is_recovered(
        prefix1 in "[ACGT]{0,40}", suffix1 in "[ACGT]{0,40}",
        prefix2 in "[ACGT]{0,40}", suffix2 in "[ACGT]{0,40}",
        core in "[ACGT]{40,80}",
    ) {
        let b1 = bank_from(&[format!("{prefix1}{core}{suffix1}")]);
        let b2 = bank_from(&[format!("{prefix2}{core}{suffix2}")]);
        let cfg = oris::core::OrisConfig::small(8);
        let r = compare_banks(&b1, &b2, &cfg);
        prop_assert!(!r.alignments.is_empty(), "planted core not found");
        let best = &r.alignments[0];
        prop_assert!(best.length >= core.len() * 8 / 10,
            "alignment too short: {} vs core {}", best.length, core.len());
    }

    /// Both engines find the same planted homology.
    #[test]
    fn engines_agree_on_planted_homology(
        noise1 in "[ACGT]{10,50}",
        noise2 in "[ACGT]{10,50}",
        core in "[ACGT]{40,70}",
    ) {
        let b1 = bank_from(&[format!("{noise1}{core}")]);
        let b2 = bank_from(&[format!("{core}{noise2}")]);
        let oris_cfg = oris::core::OrisConfig::small(8);
        let blast_cfg = BlastConfig::matched(&oris_cfg);
        let r1 = compare_banks(&b1, &b2, &oris_cfg);
        let r2 = blast_compare_banks(&b1, &b2, &blast_cfg);
        prop_assert!(!r1.alignments.is_empty());
        prop_assert!(!r2.alignments.is_empty());
        prop_assert!(oris::eval::equivalent(&r1.alignments[0], &r2.alignments[0], 0.8),
            "engines disagree: {} vs {}", r1.alignments[0], r2.alignments[0]);
    }

    /// The heuristic never reports an alignment scoring above the exact
    /// local optimum (Smith–Waterman-style upper bound via Gotoh).
    #[test]
    fn reported_alignments_respect_the_exact_optimum(
        s1 in "[ACGT]{30,80}",
        core in "[ACGT]{30,50}",
    ) {
        let b1 = bank_from(&[format!("{s1}{core}")]);
        let b2 = bank_from(std::slice::from_ref(&core));
        let cfg = oris::core::OrisConfig::small(7);
        let r = compare_banks(&b1, &b2, &cfg);
        if let Some(best) = r.alignments.first() {
            let oracle = oris::align::gotoh_local(
                b1.sequence(0),
                b2.sequence(0),
                &cfg.scheme,
            );
            // convert reported stats back to a score
            let rescore = best.length as i32 - (best.mismatch as i32) * 4
                - best.gapopen as i32 * 5; // upper bound on our scheme
            prop_assert!(rescore <= oracle.score + 1,
                "reported {} vs oracle {}", rescore, oracle.score);
        }
    }
}

use oris_index::BankIndex;

#[test]
fn full_paper_configuration_smoke() {
    // One end-to-end run with every paper feature on: W=11, filters,
    // e-value threshold, parallel steps — verifying the library in its
    // defaults rather than test-sized configs.
    let b1 = paper_banks(&["EST1"], 0.08).remove(0).bank;
    let b2 = paper_banks(&["EST2"], 0.08).remove(0).bank;
    let r = compare_banks(&b1, &b2, &OrisConfig::default());
    // Deterministic generated banks → deterministic expectations.
    assert!(r.stats.hsps >= r.alignments.len());
    for a in &r.alignments {
        assert!(a.pident > 0.0 && a.pident <= 100.0);
        assert!(a.qstart <= a.qend);
        assert!(a.sstart <= a.send);
    }
}
