//! Streaming ≡ collected, pinned at the workspace level.
//!
//! The sink refactor's central promise: `CollectSink` (the `OrisResult`
//! path), `StreamWriter` (incremental `-m 8` emission) and `TopKSink`
//! (with `k` at least the hit count) produce identical output — byte
//! identical for the writer — across random banks, both strands, masked
//! and fully-indexed configurations, thread counts, and batch order.
//! Plus the tied-e-value regression: duplicated sequences make e-values
//! tie exactly, and the strict total order must keep the output unique
//! and thread-count-invariant anyway.

use oris_core::{CollectSink, OrisConfig, RecordSink, Session, StreamWriter, TopKSink};
use oris_eval::{M8Record, M8Writer};
use oris_seqio::{Bank, BankBuilder};
use proptest::prelude::*;

fn bank_from(seqs: &[String]) -> Bank {
    let mut b = BankBuilder::new();
    for (i, s) in seqs.iter().enumerate() {
        b.push_str(&format!("s{i}"), s).unwrap();
    }
    b.finish()
}

/// Renders records the way `StreamWriter` does, for byte comparisons.
fn render(records: &[M8Record]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut w = M8Writer::new(&mut out);
    for r in records {
        w.write_record(r).unwrap();
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CollectSink ≡ StreamWriter ≡ TopKSink(k ≥ hits) over random banks.
    /// Query sequences embed the subject's (plus random flanks), so real
    /// records flow; a poly-A tail under the entropy filter exercises the
    /// masked-index configuration, `strands` the minus-strand merge.
    #[test]
    fn sinks_agree_across_configs(
        seqs in proptest::collection::vec("[ACGT]{30,80}", 1..4),
        flank in "[ACGT]{5,20}",
        w in 5usize..8,
        flags in 0u8..8,
        threads in 1usize..4,
    ) {
        let (both_strands, masked, reverse_batch) =
            (flags & 1 != 0, flags & 2 != 0, flags & 4 != 0);
        let subject = bank_from(&seqs);
        // Query bank 1: subject sequences with flanks (guaranteed
        // homology); bank 2: one flank-only sequence (mostly empty
        // output), plus a poly-A run in masked mode so the filter has
        // something to mask on the query side too.
        let q1_seqs: Vec<String> = seqs
            .iter()
            .map(|s| {
                if masked {
                    format!("{flank}{s}{}", "A".repeat(40))
                } else {
                    format!("{flank}{s}")
                }
            })
            .collect();
        let q2_seqs = vec![flank.clone()];
        let queries = if reverse_batch {
            vec![bank_from(&q2_seqs), bank_from(&q1_seqs)]
        } else {
            vec![bank_from(&q1_seqs), bank_from(&q2_seqs)]
        };

        let cfg = OrisConfig {
            both_strands,
            filter: if masked {
                oris_core::FilterKind::Entropy
            } else {
                oris_core::FilterKind::None
            },
            threads: Some(threads),
            ..OrisConfig::small(w)
        };
        let session = Session::new(&subject, &cfg).unwrap();

        // Collected reference: one run per query bank, in batch order.
        let collected: Vec<M8Record> = queries
            .iter()
            .flat_map(|q| session.run(q).alignments)
            .collect();

        // Streamed path: byte-identical to the rendered reference.
        let mut stream = StreamWriter::new(Vec::new());
        let batch = session.run_batch(&queries, &mut stream).unwrap();
        prop_assert_eq!(batch.queries(), queries.len());
        let streamed = stream.into_inner();
        prop_assert_eq!(&streamed, &render(&collected));

        // TopK with k ≥ total hits keeps everything, in the same order.
        let mut topk = TopKSink::new(collected.len().max(1));
        session.run_batch(&queries, &mut topk).unwrap();
        prop_assert_eq!(topk.records(), &collected[..]);

        // CollectSink across the same batch: the in-memory twin.
        let mut collect = CollectSink::new();
        session.run_batch(&queries, &mut collect).unwrap();
        prop_assert_eq!(collect.records(), &collected[..]);
    }

    /// TopK with a small k is a per-sequence prefix of the collected
    /// order: for every query sequence, its retained records are exactly
    /// the first k of that sequence's collected records.
    #[test]
    fn topk_retains_a_prefix_per_sequence(
        seqs in proptest::collection::vec("[ACGT]{30,60}", 1..3),
        k in 1usize..4,
        w in 5usize..7,
    ) {
        let subject = bank_from(&seqs);
        // Repeat the subject sequences so each query sequence hits
        // several subject records.
        let dup: Vec<String> = seqs.iter().chain(seqs.iter()).cloned().collect();
        let query = bank_from(&dup);
        let cfg = OrisConfig::small(w);
        let session = Session::new(&subject, &cfg).unwrap();
        let collected = session.run(&query).alignments;

        let mut topk = TopKSink::new(k);
        session.run_batch(&[query], &mut topk).unwrap();
        let retained = topk.into_records();

        for qid in collected.iter().map(|r| &r.qid) {
            let all: Vec<&M8Record> =
                collected.iter().filter(|r| &r.qid == qid).collect();
            let kept: Vec<&M8Record> =
                retained.iter().filter(|r| &r.qid == qid).collect();
            let want = &all[..all.len().min(k)];
            prop_assert_eq!(&kept[..], want);
        }
    }
}

/// Deliberately tied e-values: two identical query sequences under
/// different names produce records equal in every statistical field. The
/// strict total order must (a) keep both, (b) order them by the id
/// tie-break, and (c) produce identical bytes for any thread count,
/// streamed or collected.
#[test]
fn tied_evalues_order_deterministically() {
    let core = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGATCCGGTAAGCT";
    let subject = bank_from(&[format!("TT{core}GG")]);
    let mut qb = BankBuilder::new();
    // Same sequence, three names — three records tied on e-value AND
    // bit score, distinguishable only by qid.
    qb.push_str("q_b", core).unwrap();
    qb.push_str("q_a", core).unwrap();
    qb.push_str("q_c", core).unwrap();
    let query = qb.finish();

    let mut reference: Option<Vec<u8>> = None;
    for threads in [1usize, 2, 8] {
        let cfg = OrisConfig {
            threads: Some(threads),
            ..OrisConfig::small(8)
        };
        let session = Session::new(&subject, &cfg).unwrap();
        let collected = session.run(&query).alignments;
        assert_eq!(collected.len(), 3, "{collected:?}");
        // The tie is real...
        assert_eq!(collected[0].evalue, collected[1].evalue);
        assert_eq!(collected[0].bitscore, collected[1].bitscore);
        // ...and resolved by the id tie-break, not arrival order.
        let qids: Vec<&str> = collected.iter().map(|r| r.qid.as_str()).collect();
        assert_eq!(qids, vec!["q_a", "q_b", "q_c"]);

        // Streamed bytes match collected bytes and are identical across
        // thread counts.
        let mut stream = StreamWriter::new(Vec::new());
        session
            .run_batch(std::slice::from_ref(&query), &mut stream)
            .unwrap();
        let bytes = stream.into_inner();
        let mut rendered = Vec::new();
        let mut w = M8Writer::new(&mut rendered);
        for r in &collected {
            w.write_record(r).unwrap();
        }
        assert_eq!(bytes, rendered);
        match &reference {
            None => reference = Some(bytes),
            Some(first) => assert_eq!(&bytes, first, "threads={threads}"),
        }
    }
}

/// The `merge_strands` form of the same guarantee: merging collected
/// strand halves uses the strict total order, so tied records land in a
/// unique order there too.
#[test]
fn merge_strands_uses_the_strict_total_order() {
    let rec = |qid: &str, evalue: f64, bitscore: f64| M8Record {
        qid: qid.into(),
        sid: "s".into(),
        pident: 100.0,
        length: 30,
        mismatch: 0,
        gapopen: 0,
        qstart: 1,
        qend: 30,
        sstart: 1,
        send: 30,
        evalue,
        bitscore,
    };
    let plus = oris_core::OrisResult {
        alignments: vec![rec("q_z", 1e-5, 40.0), rec("q_a", 1e-5, 40.0)],
        stats: oris_core::PipelineStats::default(),
    };
    let minus = oris_core::OrisResult {
        // Tied with the plus records on e-value; one stronger bit score.
        alignments: vec![rec("q_m", 1e-5, 40.0), rec("q_s", 1e-5, 60.0)],
        stats: oris_core::PipelineStats::default(),
    };
    let merged = oris_core::merge_strands(plus, minus);
    let qids: Vec<&str> = merged.alignments.iter().map(|r| r.qid.as_str()).collect();
    // Score-descending beats id order; ids break the remaining tie.
    assert_eq!(qids, vec!["q_s", "q_a", "q_m", "q_z"]);
}

/// A sink watching query boundaries sees one `end_query` per batch entry,
/// in order — the contract the CLI's streaming output rests on.
#[test]
fn batch_marks_one_boundary_per_query() {
    #[derive(Default)]
    struct Boundaries {
        accepted: Vec<usize>,
        current: usize,
    }
    impl RecordSink for Boundaries {
        fn accept(&mut self, _rec: M8Record) {
            self.current += 1;
        }
        fn end_query(&mut self) -> std::io::Result<()> {
            self.accepted.push(self.current);
            self.current = 0;
            Ok(())
        }
    }

    let core = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGATCCGGTAAGCT";
    let subject = bank_from(&[format!("AA{core}TT")]);
    let queries = vec![
        bank_from(&[core.to_string()]),
        bank_from(&["GGTTCCAAGGTTCCAAGGTTCCAA".to_string()]), // no hits
        bank_from(&[format!("CC{core}AA"), core.to_string()]),
    ];
    let cfg = OrisConfig::small(8);
    let session = Session::new(&subject, &cfg).unwrap();
    let mut sink = Boundaries::default();
    let batch = session.run_batch(&queries, &mut sink).unwrap();
    assert_eq!(sink.accepted.len(), 3);
    assert_eq!(sink.accepted[1], 0, "{:?}", sink.accepted);
    assert!(sink.accepted[0] > 0);
    assert!(sink.accepted[2] > 0);
    // Per-query stats line up with what the sink saw.
    for (got, stats) in sink.accepted.iter().zip(&batch.per_query) {
        assert_eq!(*got as u64, stats.step4.emitted);
    }
}
