//! # oris — Ordered Index Seed algorithm for intensive DNA sequence comparison
//!
//! Facade crate for the reproduction of D. Lavenier, *Ordered Index Seed
//! Algorithm for Intensive DNA Sequence Comparison*, HiCOMB 2008. It
//! re-exports the public API of every subsystem crate so applications can
//! depend on a single crate:
//!
//! ```
//! use oris::prelude::*;
//!
//! let bank1 = parse_fasta(">q\nACGTACGTACGTACGTACGT\n").unwrap();
//! let bank2 = parse_fasta(">s\nACGTACGTACGTACGTACGT\n").unwrap();
//! let cfg = OrisConfig::small(8);
//! let result = compare_banks(&bank1, &bank2, &cfg);
//! assert!(!result.alignments.is_empty());
//! ```
//!
//! See `DESIGN.md` at the repository root for the system inventory and the
//! per-experiment index, and `EXPERIMENTS.md` for paper-vs-measured results.

pub use oris_align as align;
pub use oris_blast as blast;
pub use oris_core as core;
pub use oris_dust as dust;
pub use oris_eval as eval;
pub use oris_index as index;
pub use oris_obs as obs;
pub use oris_seqio as seqio;
pub use oris_simulate as simulate;
pub use oris_stats as stats;

/// Commonly used items, re-exported flat.
pub mod prelude {
    pub use oris_blast::{compare_banks as blast_compare_banks, BlastConfig};
    pub use oris_core::{
        compare_banks, AlignmentRecord, BatchStats, CollectSink, OrisConfig, OrisResult,
        PreparedBank, RecordSink, Session, StreamWriter, TopKSink,
    };
    pub use oris_eval::{MissReport, SpeedupRow};
    pub use oris_index::{BankIndex, IndexConfig, IndexMeta, SeedCoder};
    pub use oris_seqio::{parse_fasta, read_fasta_file, Bank, BankBuilder};
    pub use oris_simulate::{paper_banks, BankSpec, SimConfig};
}
